package baselines

import (
	"testing"

	"mlfs/internal/cluster"
	"mlfs/internal/job"
	"mlfs/internal/learncurve"
	"mlfs/internal/metrics"
	"mlfs/internal/sched"
	"mlfs/internal/sim"
	"mlfs/internal/trace"
)

func testCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Servers: 4, GPUsPerServer: 4, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
}

func buildJob(t *testing.T, id int64, gpus int, next *job.TaskID, mut func(*job.Spec)) *job.Job {
	t.Helper()
	spec := job.Spec{
		ID: job.ID(id), Family: learncurve.ResNet, Comm: job.AllReduce,
		ModelParallel: gpus, MaxIterations: 100, IterSec: 10, TotalParams: 50,
		Urgency: 5, Deadline: 24 * 3600,
		Curve: learncurve.Curve{L0: 2, Floor: 0.1, Decay: 1, AccMax: 0.9, Rate: 0.02},
	}
	if mut != nil {
		mut(&spec)
	}
	j, err := job.Build(spec, next)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func ctxWith(jobs ...*job.Job) *sched.Context {
	var waiting []*job.Task
	for _, j := range jobs {
		for _, t := range j.Tasks {
			waiting = append(waiting, t)
		}
	}
	return sched.NewContext(0, testCluster(), jobs, waiting, 0.9, 0.9)
}

func TestNames(t *testing.T) {
	cases := map[string]sched.Scheduler{
		"tensorflow": NewBorgFair(),
		"slaq":       NewSLAQ(),
		"tiresias":   NewTiresias(),
		"graphene":   NewGraphene(),
		"hypersched": NewHyperSched(),
		"gandiva":    NewGandiva(),
		"rl":         NewRLSched(1),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Fatalf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestAllBaselinesEndToEnd(t *testing.T) {
	scheds := []func() sched.Scheduler{
		func() sched.Scheduler { return NewBorgFair() },
		func() sched.Scheduler { return NewSLAQ() },
		func() sched.Scheduler { return NewTiresias() },
		func() sched.Scheduler { return NewGraphene() },
		func() sched.Scheduler { return NewHyperSched() },
		func() sched.Scheduler { return NewGandiva() },
		func() sched.Scheduler { return NewRLSched(7) },
	}
	for _, mk := range scheds {
		s := mk()
		simulator, err := sim.New(sim.Config{
			Cluster: cluster.Config{Servers: 4, GPUsPerServer: 4, GPUCapacity: 1,
				CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200},
			Trace:     trace.Generate(trace.GenConfig{Jobs: 25, Seed: 51, DurationSec: 2 * 3600}),
			Scheduler: s,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		res, err := simulator.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		assertHealthy(t, s.Name(), res, 25)
	}
}

func assertHealthy(t *testing.T, name string, res *metrics.Result, jobs int) {
	t.Helper()
	if res.Jobs != jobs {
		t.Fatalf("%s: jobs = %d", name, res.Jobs)
	}
	if res.Counters.Truncated > jobs/4 {
		t.Fatalf("%s: %d truncated", name, res.Counters.Truncated)
	}
	if res.AvgJCTSec <= 0 {
		t.Fatalf("%s: degenerate", name)
	}
}

func TestBorgFairPrefersLeastServed(t *testing.T) {
	var next job.TaskID
	// a is half placed, b untouched: fair share places b's gang first
	// when capacity is tight.
	a := buildJob(t, 1, 2, &next, nil)
	b := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 3, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	if err := cl.Place(a.Tasks[0].ID.Ref(), 0, 0, a.Tasks[0].Demand, a.Tasks[0].GPUShare); err != nil {
		t.Fatal(err)
	}
	waiting := []*job.Task{a.Tasks[1], b.Tasks[0], b.Tasks[1]}
	ctx := sched.NewContext(0, cl, []*job.Job{a, b}, waiting, 0.9, 0.9)
	NewBorgFair().Schedule(ctx)
	if !ctx.FullyPlaced(b) {
		t.Fatal("fair scheduler must serve the least-served job first")
	}
}

func TestSLAQPrefersSteepestCurve(t *testing.T) {
	var next job.TaskID
	// steep: early iterations, large loss reductions; flat: late.
	steep := buildJob(t, 1, 2, &next, nil)
	flat := buildJob(t, 2, 2, &next, nil)
	flat.Progress = 90
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, steep.Tasks...)
	waiting = append(waiting, flat.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{steep, flat}, waiting, 0.9, 0.9)
	NewSLAQ().Schedule(ctx)
	if !ctx.FullyPlaced(steep) || ctx.FullyPlaced(flat) {
		t.Fatal("SLAQ must give the slot to the steepest loss-reduction job")
	}
}

func TestTiresiasLeastAttainedService(t *testing.T) {
	var next job.TaskID
	// IterSec 60 keeps the served job's remaining work above the epoch
	// boost threshold, isolating the least-attained-service principle.
	served := buildJob(t, 1, 2, &next, func(s *job.Spec) { s.IterSec = 60 })
	served.Progress = 50 // has consumed plenty of service
	fresh := buildJob(t, 2, 2, &next, func(s *job.Spec) { s.IterSec = 60 })
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, served.Tasks...)
	waiting = append(waiting, fresh.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{served, fresh}, waiting, 0.9, 0.9)
	NewTiresias().Schedule(ctx)
	if !ctx.FullyPlaced(fresh) || ctx.FullyPlaced(served) {
		t.Fatal("Tiresias must favour the least-attended job")
	}
}

func TestTiresiasEpochBoost(t *testing.T) {
	var next job.TaskID
	// nearly done: remaining work below the epoch -> jumps the queue
	// despite high attained service.
	almost := buildJob(t, 1, 2, &next, nil)
	almost.Progress = 99
	fresh := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, almost.Tasks...)
	waiting = append(waiting, fresh.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{almost, fresh}, waiting, 0.9, 0.9)
	NewTiresias().Schedule(ctx)
	if !ctx.FullyPlaced(almost) {
		t.Fatal("job finishable within the epoch must get the GPUs (Tiresias principle 2)")
	}
}

func TestGraphenePlacesTroublesomeTasksFirst(t *testing.T) {
	var next job.TaskID
	j := buildJob(t, 1, 4, &next, func(s *job.Spec) {
		s.Family = learncurve.AlexNet // sequential chain: head has most descendants
	})
	ctx := ctxWith(j)
	NewGraphene().Schedule(ctx)
	if !ctx.FullyPlaced(j) {
		t.Fatal("job must be placed")
	}
}

func TestHyperSchedPausesConvergedJobs(t *testing.T) {
	var next job.TaskID
	converged := buildJob(t, 1, 2, &next, nil)
	converged.Progress = 99 // no accuracy improvement left
	improving := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, converged.Tasks...)
	waiting = append(waiting, improving.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{converged, improving}, waiting, 0.9, 0.9)
	NewHyperSched().Schedule(ctx)
	if !ctx.FullyPlaced(improving) || ctx.FullyPlaced(converged) {
		t.Fatal("HyperSched must pause the job with no accuracy improvement left")
	}
}

func TestHyperSchedIgnoresExpiredDeadline(t *testing.T) {
	var next job.TaskID
	expired := buildJob(t, 1, 2, &next, func(s *job.Spec) { s.Deadline = 1 })
	live := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, expired.Tasks...)
	waiting = append(waiting, live.Tasks...)
	ctx := sched.NewContext(3600, cl, []*job.Job{expired, live}, waiting, 0.9, 0.9)
	NewHyperSched().Schedule(ctx)
	if !ctx.FullyPlaced(live) {
		t.Fatal("job that can still gain accuracy before its deadline must win")
	}
}

func TestGandivaFIFO(t *testing.T) {
	var next job.TaskID
	first := buildJob(t, 1, 2, &next, nil)
	second := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, second.Tasks...) // order in slice must not matter
	waiting = append(waiting, first.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{first, second}, waiting, 0.9, 0.9)
	NewGandiva().Schedule(ctx)
	if !ctx.FullyPlaced(first) || ctx.FullyPlaced(second) {
		t.Fatal("Gandiva must be FIFO by submission order")
	}
}

func TestGandivaMigratesOverloadedGPU(t *testing.T) {
	var next job.TaskID
	a := buildJob(t, 1, 1, &next, nil)
	b := buildJob(t, 2, 1, &next, nil)
	cl := testCluster()
	// Overload device (0,0) with two tasks.
	if err := cl.Place(a.Tasks[0].ID.Ref(), 0, 0, a.Tasks[0].Demand, a.Tasks[0].GPUShare); err != nil {
		t.Fatal(err)
	}
	if err := cl.Place(b.Tasks[0].ID.Ref(), 0, 0, b.Tasks[0].Demand, b.Tasks[0].GPUShare); err != nil {
		t.Fatal(err)
	}
	ctx := sched.NewContext(0, cl, []*job.Job{a, b}, nil, 0.9, 0.9)
	NewGandiva().Schedule(ctx)
	if ctx.Migrations == 0 {
		t.Fatal("Gandiva must migrate off the overloaded GPU")
	}
	pa, pb := cl.Lookup(a.Tasks[0].ID.Ref()), cl.Lookup(b.Tasks[0].ID.Ref())
	if pa.Server == pb.Server && pa.Device == pb.Device {
		t.Fatal("tasks must no longer share the overloaded device")
	}
}

func TestRLSchedLearnsAndPlaces(t *testing.T) {
	r := NewRLSched(3)
	r.warmup = 2
	cl := testCluster()
	var next job.TaskID
	var active []*job.Job
	for round := 0; round < 10; round++ {
		j := buildJob(t, int64(round+1), 2, &next, nil)
		active = append(active, j)
		var waiting []*job.Task
		for _, a := range active {
			for _, task := range a.Tasks {
				if cl.Lookup(task.ID.Ref()) == nil {
					waiting = append(waiting, task)
				}
			}
		}
		ctx := sched.NewContext(float64(round*60), cl, active, waiting, 0.9, 0.9)
		r.Schedule(ctx)
	}
	if len(r.pending) == 0 && r.round > r.warmup {
		// pending may be empty if all were trained; updates imply training
		// worked. At minimum the cluster must hold tasks.
	}
	if cl.NumTasks() == 0 {
		t.Fatal("RL baseline never placed anything")
	}
}

func TestSLAQPreemptsConvergedRunningJob(t *testing.T) {
	var next job.TaskID
	// converged occupies the only slots; steep is queued and outgains it.
	converged := buildJob(t, 1, 2, &next, nil)
	converged.Progress = 95
	steep := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	for i, task := range converged.Tasks {
		if err := cl.Place(task.ID.Ref(), 0, i, task.Demand, task.GPUShare); err != nil {
			t.Fatal(err)
		}
	}
	ctx := sched.NewContext(0, cl, []*job.Job{converged, steep},
		append([]*job.Task(nil), steep.Tasks...), 0.9, 0.9)
	NewSLAQ().Schedule(ctx)
	if ctx.Evictions == 0 {
		t.Fatal("SLAQ must preempt the flat-curve running job for the steep queued one")
	}
	if ctx.FullyPlaced(converged) {
		t.Fatal("converged job must have lost its slots")
	}
}

func TestSLAQDoesNotPreemptSteeperRunningJob(t *testing.T) {
	var next job.TaskID
	running := buildJob(t, 1, 2, &next, nil) // fresh: maximal gain
	flatQueued := buildJob(t, 2, 2, &next, nil)
	flatQueued.Progress = 95
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	for i, task := range running.Tasks {
		if err := cl.Place(task.ID.Ref(), 0, i, task.Demand, task.GPUShare); err != nil {
			t.Fatal(err)
		}
	}
	ctx := sched.NewContext(0, cl, []*job.Job{running, flatQueued},
		append([]*job.Task(nil), flatQueued.Tasks...), 0.9, 0.9)
	NewSLAQ().Schedule(ctx)
	if !ctx.FullyPlaced(running) {
		t.Fatal("SLAQ must not preempt a running job that outgains the queue")
	}
}

func TestBorgFairTimeShares(t *testing.T) {
	var next job.TaskID
	served := buildJob(t, 1, 2, &next, nil)
	served.Progress = 10 // has attained service
	fresh := buildJob(t, 2, 2, &next, nil)
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	for i, task := range served.Tasks {
		if err := cl.Place(task.ID.Ref(), 0, i, task.Demand, task.GPUShare); err != nil {
			t.Fatal(err)
		}
	}
	ctx := sched.NewContext(0, cl, []*job.Job{served, fresh},
		append([]*job.Task(nil), fresh.Tasks...), 0.9, 0.9)
	NewBorgFair().Schedule(ctx)
	if ctx.Evictions == 0 {
		t.Fatal("fair scheduler must time-share: the served job yields")
	}
	// A never-served running job must NOT be preempted.
	var next2 job.TaskID
	unserved := buildJob(t, 3, 2, &next2, nil)
	queued := buildJob(t, 4, 2, &next2, nil)
	cl2 := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	for i, task := range unserved.Tasks {
		if err := cl2.Place(task.ID.Ref(), 0, i, task.Demand, task.GPUShare); err != nil {
			t.Fatal(err)
		}
	}
	ctx2 := sched.NewContext(0, cl2, []*job.Job{unserved, queued},
		append([]*job.Task(nil), queued.Tasks...), 0.9, 0.9)
	NewBorgFair().Schedule(ctx2)
	if ctx2.Evictions != 0 {
		t.Fatal("a job that never got a turn must not be preempted")
	}
}

func TestHyperSchedDeadlineCriticality(t *testing.T) {
	var next job.TaskID
	// Both jobs can gain accuracy; the tight-deadline one must win the
	// only slots.
	tight := buildJob(t, 1, 2, &next, func(s *job.Spec) { s.Deadline = 2 * 3600 })
	loose := buildJob(t, 2, 2, &next, func(s *job.Spec) { s.Deadline = 100 * 3600 })
	cl := cluster.New(cluster.Config{Servers: 1, GPUsPerServer: 2, GPUCapacity: 1,
		CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200})
	var waiting []*job.Task
	waiting = append(waiting, loose.Tasks...) // order must not matter
	waiting = append(waiting, tight.Tasks...)
	ctx := sched.NewContext(0, cl, []*job.Job{tight, loose}, waiting, 0.9, 0.9)
	NewHyperSched().Schedule(ctx)
	if !ctx.FullyPlaced(tight) || ctx.FullyPlaced(loose) {
		t.Fatal("HyperSched must favour achievable gain before the nearest deadline")
	}
}
