package mlfs

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepPoint is one parameter setting and its outcome.
type SweepPoint struct {
	Value  float64
	Result *Result
}

// Sweep runs MLF-H (or MLFS for the h_s sweep) across values of one named
// parameter, holding the workload fixed — the sensitivity studies DESIGN.md
// calls out for the design choices α, γ, p_s and h_r (the paper discusses
// each knob's trade-off in §3.3 and leaves sensitivity as future work).
//
// Supported parameters: "alpha", "gamma", "gamma_d", "gamma_r", "gamma_w",
// "ps", "hr", "hs".
//
// Sweep points are independent simulations over a shared workload, so
// they execute in parallel across CPUs (mirroring Compare); each run is
// internally deterministic and results come back in value order, so the
// output is reproducible regardless of parallelism.
func Sweep(param string, values []float64, base Options) ([]SweepPoint, error) {
	if base.Jobs <= 0 && base.Trace == nil {
		return nil, fmt.Errorf("mlfs: sweep needs a workload")
	}
	if base.Trace == nil {
		base.Trace = GenerateTrace(base.Jobs, base.Seed, DefaultTraceDuration(base.Jobs))
	}
	if base.Scheduler == "" {
		base.Scheduler = "mlf-h"
	}
	type cell struct {
		res *Result
		err error
	}
	cells := make([]cell, len(values))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, v := range values {
		opts := base
		opts.Sched = nil
		switch param {
		case "alpha":
			opts.SchedOpts.Alpha = v
		case "gamma":
			opts.SchedOpts.Gamma = v
		case "gamma_d":
			opts.SchedOpts.GammaD = v
		case "gamma_r":
			opts.SchedOpts.GammaR = v
		case "gamma_w":
			opts.SchedOpts.GammaW = v
		case "ps":
			opts.SchedOpts.PSFraction = v
		case "hr":
			opts.HR = v
		case "hs":
			opts.HS = v
		default:
			return nil, fmt.Errorf("mlfs: unknown sweep parameter %q", param)
		}
		wg.Add(1)
		go func(i int, v float64, opts Options) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Run(opts)
			if err != nil {
				err = fmt.Errorf("mlfs: sweep %s=%v: %w", param, v, err)
			}
			cells[i] = cell{res, err}
		}(i, v, opts)
	}
	wg.Wait()
	out := make([]SweepPoint, 0, len(values))
	for i, v := range values {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
		out = append(out, SweepPoint{Value: v, Result: cells[i].res})
	}
	return out, nil
}
