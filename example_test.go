package mlfs_test

import (
	"fmt"

	"mlfs"
)

// ExampleRun shows the minimal path from a synthetic workload to the
// paper's metrics. Results are deterministic under a fixed seed.
func ExampleRun() {
	trace := mlfs.GenerateTrace(10, 7, 3600)
	res, err := mlfs.Run(mlfs.Options{
		Scheduler: "mlf-h",
		Trace:     trace,
		Servers:   4, GPUsPerServer: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Jobs, "jobs scheduled")
	// Output: 10 jobs scheduled
}

// ExampleNewScheduler enumerates the policies the paper evaluates.
func ExampleNewScheduler() {
	for _, name := range mlfs.SchedulerNames()[:3] {
		s, err := mlfs.NewScheduler(name, mlfs.SchedulerOptions{Seed: 1})
		if err != nil {
			panic(err)
		}
		fmt.Println(s.Name())
	}
	// Output:
	// mlfs
	// mlf-rl
	// mlf-h
}

// ExampleCompare runs two schedulers on the identical workload — the
// sweep behind Figures 4 and 5.
func ExampleCompare() {
	results, err := mlfs.Compare([]string{"mlf-h", "gandiva"}, []int{12}, mlfs.Options{
		Seed: 3, Servers: 4, GPUsPerServer: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results["mlf-h"]), len(results["gandiva"]))
	// Output: 1 1
}

// ExampleGenerateTrace round-trips a workload through CSV.
func ExampleGenerateTrace() {
	tr := mlfs.GenerateTrace(5, 1, 600)
	fmt.Println(len(tr.Records))
	// Output: 5
}
