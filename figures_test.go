package mlfs

import (
	"strings"
	"testing"
)

// tiny returns options for fast figure smoke tests.
func tiny() Options {
	return Options{Seed: 2, Servers: 4, GPUsPerServer: 4,
		SchedOpts: SchedulerOptions{Seed: 2, ImitationRounds: 10}}
}

var tinyCounts = []int{8, 16}

func TestFigure4SeriesShape(t *testing.T) {
	scheds := []string{"mlf-h", "gandiva"}
	fig, err := Figure4(FigAvgJCT, scheds, tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4b" {
		t.Fatalf("ID = %s", fig.ID)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(tinyCounts) {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for i, p := range s.Points {
			if p.X != float64(tinyCounts[i]) {
				t.Fatalf("%s: x = %v", s.Label, p.X)
			}
			if p.Y <= 0 {
				t.Fatalf("%s: non-positive JCT %v", s.Label, p.Y)
			}
		}
	}
}

func TestFigure4CDF(t *testing.T) {
	fig, err := Figure4(FigJCTCDF, []string{"mlf-h"}, tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	prev := -1.0
	for _, p := range pts {
		if p.Y < prev || p.Y < 0 || p.Y > 1 {
			t.Fatalf("CDF not monotone in [0,1]: %v after %v", p.Y, prev)
		}
		prev = p.Y
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("CDF must reach 1, got %v", pts[len(pts)-1].Y)
	}
}

func TestFigure5IDAndPreset(t *testing.T) {
	base := tiny()
	base.Servers, base.GPUsPerServer = 0, 0
	base.Preset = PaperSim
	fig, err := Figure4(FigDeadlineRatio, []string{"gandiva"}, []int{10}, base)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig5c" {
		t.Fatalf("ID = %s, want fig5c", fig.ID)
	}
}

func TestFigure6Series(t *testing.T) {
	fig, err := Figure6(tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	labels := map[string]bool{}
	for _, s := range fig.Series {
		labels[s.Label] = true
	}
	for _, want := range []string{"w/ urgency (urgent jobs)", "w/o urgency (urgent jobs)", "w/ deadline", "w/o deadline"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestFigure7And8And9Series(t *testing.T) {
	f7, err := Figure7(tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Series) != 4 {
		t.Fatalf("fig7 series = %d", len(f7.Series))
	}
	f8, err := Figure8(tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Series) != 8 {
		t.Fatalf("fig8 series = %d", len(f8.Series))
	}
	f9, err := Figure9(tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Series) != 4 {
		t.Fatalf("fig9 series = %d", len(f9.Series))
	}
}

func TestMakespansFigure(t *testing.T) {
	fig, err := Makespans([]string{"mlf-h"}, tinyCounts, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Series[0].Points {
		if p.Y <= 0 {
			t.Fatalf("non-positive makespan %v", p.Y)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	fig := &Figure{ID: "x", Title: "T", XLabel: "a", YLabel: "b",
		Series: []Series{{Label: "s1", Points: []Point{{1, 2}, {3, 4}}}}}
	var sb strings.Builder
	if err := fig.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x: T", "## s1", "1\t2", "3\t4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q:\n%s", want, out)
		}
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(150, 100) != 0.5 || Improvement(1, 0) != 0 {
		t.Fatal("Improvement formula wrong")
	}
}

func TestPaperJobCounts(t *testing.T) {
	real := PaperRealJobCounts()
	if len(real) != 5 || real[0] != 155 || real[4] != 1860 {
		t.Fatalf("real counts = %v", real)
	}
	sim := PaperSimJobCounts(1)
	if sim[1] != 117325 {
		t.Fatalf("sim counts = %v", sim)
	}
	scaled := PaperSimJobCounts(1000)
	if scaled[1] != 117 {
		t.Fatalf("scaled = %v", scaled)
	}
	if PaperSimJobCounts(0)[0] != 58663 {
		t.Fatal("scale<1 must clamp to 1")
	}
}

func TestSweep(t *testing.T) {
	points, err := Sweep("alpha", []float64{0.1, 0.9}, Options{
		Jobs: 12, Seed: 4, Servers: 4, GPUsPerServer: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Value != 0.1 || points[1].Value != 0.9 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.Result.Jobs != 12 {
			t.Fatal("sweep lost jobs")
		}
	}
	if _, err := Sweep("nope", []float64{1}, Options{Jobs: 5}); err == nil {
		t.Fatal("unknown parameter must error")
	}
	if _, err := Sweep("alpha", []float64{1}, Options{}); err == nil {
		t.Fatal("missing workload must error")
	}
	for _, param := range []string{"gamma", "gamma_d", "gamma_r", "gamma_w", "ps", "hr", "hs"} {
		if _, err := Sweep(param, []float64{0.5}, Options{Jobs: 5, Servers: 2, GPUsPerServer: 2}); err != nil {
			t.Fatalf("sweep %s: %v", param, err)
		}
	}
}
