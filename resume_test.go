package mlfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlfs/internal/sim"
	"mlfs/internal/snapshot"
)

// resumeSimConfig builds a small fault-capable run for snapshot tests:
// 24 jobs on a 16-GPU cluster, arrivals over 30 ticks. Every call
// constructs a fresh scheduler and re-materialises the trace, so
// simulators never share state.
func resumeSimConfig(t *testing.T, name string, workers int, mttf float64) sim.Config {
	t.Helper()
	sch, err := NewScheduler(name, SchedulerOptions{Seed: 1, ImitationRounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Cluster:        Options{Servers: 4, GPUsPerServer: 4}.clusterConfig(),
		Trace:          GenerateTrace(24, 1, 1800),
		Scheduler:      sch,
		AdvanceWorkers: workers,
	}
	if mttf > 0 {
		cfg.Failures = FailureConfig{MTTFSec: mttf, MTTRSec: 600, Seed: 3}
	}
	return cfg
}

// snapshotAt runs a fresh simulator to stopAt ticks, writing its
// snapshot exactly there, and returns the simulator and the payload.
func snapshotAt(t *testing.T, cfg sim.Config, stopAt int) (*sim.Simulator, []byte) {
	t.Helper()
	cfg.SnapshotEvery = stopAt
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "run.snap")
	cfg.StopAtTick = stopAt
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Tick(); got != stopAt {
		t.Fatalf("stopped at tick %d, want %d", got, stopAt)
	}
	payload, err := snapshot.ReadFile(cfg.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	return s, payload
}

// TestSnapshotGoldenRoundTrip is the per-scheduler bit-identity
// guarantee: snapshot a run at tick T, decode into a fresh simulator,
// verify the deep state survives exactly (the restored simulator
// re-encodes to the original payload bytes), then continue 100 more
// ticks and compare every metric — including each job's completion time
// — bit-for-bit against an uninterrupted run.
func TestSnapshotGoldenRoundTrip(t *testing.T) {
	const stopAt, extra = 80, 100
	for _, name := range append(SchedulerNames(), "fifo", "srtf") {
		t.Run(name, func(t *testing.T) {
			_, payload := snapshotAt(t, resumeSimConfig(t, name, 1, 0), stopAt)

			cfgB := resumeSimConfig(t, name, 1, 0)
			cfgB.StopAtTick = stopAt + extra
			simB, err := sim.New(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			if err := simB.Restore(payload); err != nil {
				t.Fatal(err)
			}
			re, err := simB.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, payload) {
				t.Fatalf("restored state re-encodes differently (%d vs %d bytes)", len(re), len(payload))
			}
			resumed, err := simB.Run()
			if err != nil {
				t.Fatal(err)
			}

			cfgC := resumeSimConfig(t, name, 1, 0)
			cfgC.StopAtTick = stopAt + extra
			simC, err := sim.New(cfgC)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := simC.Run()
			if err != nil {
				t.Fatal(err)
			}
			resumed.Counters.ZeroVolatile()
			golden.Counters.ZeroVolatile()
			if !reflect.DeepEqual(resumed, golden) {
				t.Fatalf("resumed run diverged from uninterrupted run:\n%+v\n%+v", resumed, golden)
			}
		})
	}
}

// TestSnapshotResumeWhileParked covers the hardest dynamic state: a
// snapshot taken under an active FailureConfig at an instant when jobs
// are sitting in retry backoff. The parked set, its order, the fault
// process RNG position and the retry bookkeeping must all survive for
// the continuation to match.
func TestSnapshotResumeWhileParked(t *testing.T) {
	const mttf = 1800 // one expected failure per server per 30 ticks
	// Probe the run tick by tick for an instant with parked jobs.
	probe, err := sim.New(resumeSimConfig(t, "mlf-h", 1, mttf))
	if err != nil {
		t.Fatal(err)
	}
	stopAt := 0
	for i := 1; i <= 600 && stopAt == 0; i++ {
		probe.SetStopAtTick(i)
		if _, err := probe.Run(); err != nil {
			t.Fatal(err)
		}
		if len(probe.Parked()) > 0 {
			stopAt = probe.Tick()
		}
	}
	if stopAt == 0 {
		t.Fatal("no job ever entered retry backoff; failure process too mild for this test")
	}

	simA, payload := snapshotAt(t, resumeSimConfig(t, "mlf-h", 1, mttf), stopAt)
	if len(simA.Parked()) == 0 {
		t.Fatalf("tick %d: expected parked jobs at snapshot time", stopAt)
	}

	cfgB := resumeSimConfig(t, "mlf-h", 1, mttf)
	simB, err := sim.New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := simB.Restore(payload); err != nil {
		t.Fatal(err)
	}
	if len(simB.Parked()) != len(simA.Parked()) {
		t.Fatalf("parked set not restored: %d vs %d", len(simB.Parked()), len(simA.Parked()))
	}
	re, err := simB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, payload) {
		t.Fatal("restored state re-encodes differently with parked jobs")
	}
	resumed, err := simB.Run()
	if err != nil {
		t.Fatal(err)
	}

	simC, err := sim.New(resumeSimConfig(t, "mlf-h", 1, mttf))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := simC.Run()
	if err != nil {
		t.Fatal(err)
	}
	resumed.Counters.ZeroVolatile()
	golden.Counters.ZeroVolatile()
	if !reflect.DeepEqual(resumed, golden) {
		t.Fatalf("resume from parked state diverged:\n%+v\n%+v", resumed, golden)
	}
}

// TestSnapshotResumeAcrossWorkerCounts: a snapshot from a serial run
// resumes bit-identically under a parallel advance pool (and vice
// versa) — the snapshot carries no worker-count dependence.
func TestSnapshotResumeAcrossWorkerCounts(t *testing.T) {
	const stopAt = 60
	_, payload := snapshotAt(t, resumeSimConfig(t, "mlf-h", 1, 7200), stopAt)

	results := make([]*Result, 0, 2)
	for _, workers := range []int{1, 8} {
		cfg := resumeSimConfig(t, "mlf-h", workers, 7200)
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(payload); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		res.Counters.SchedSeconds = 0
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("worker count changed resumed results:\n%+v\n%+v", results[0], results[1])
	}
}

// TestResumeNoiseStreamRegression pins a bug the small round-trip tests
// missed: observation noise (Curve.ObservedAccuracy) comes from a
// per-curve RNG whose stream position was not snapshotted, so a resumed
// run replayed noise values the uninterrupted run had already consumed.
// The slightly different accuracy observations only flip a scheduling
// decision once enough post-resume draws accumulate, which needs a late
// snapshot in a long run — the paper-real configuration below was the
// first to expose it (resumed avgJCT drifted ~1% from golden).
func TestResumeNoiseStreamRegression(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "run.snap")
	opts := Options{
		Scheduler: "mlfs",
		Jobs:      80, Seed: 7,
		SchedOpts: SchedulerOptions{Seed: 7},
		Failures:  FailureConfig{MTTFSec: 21600, MTTRSec: 600, Seed: 7},
	}
	golden, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	withSnap := opts
	withSnap.SnapshotEvery = 200
	withSnap.SnapshotPath = snapPath
	if _, err := Run(withSnap); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(snapPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Counters.ZeroVolatile()
	golden.Counters.ZeroVolatile()
	if !reflect.DeepEqual(resumed, golden) {
		t.Fatalf("resume replayed a different noise stream:\navgJCT %v vs %v min\nmigrations %v vs %v",
			resumed.AvgJCTSec/60, golden.AvgJCTSec/60, resumed.Counters.Migrations, golden.Counters.Migrations)
	}
}

// TestResumeFacade drives the public Run/Resume pair end to end: a
// snapshotted run resumed via mlfs.Resume matches an uninterrupted
// mlfs.Run, and the error taxonomy behaves (missing file, corrupt file,
// mismatched run).
func TestResumeFacade(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "run.snap")
	opts := Options{
		Scheduler: "mlf-h",
		Jobs:      24, Seed: 1, TraceDurationSec: 1800,
		Servers: 4, GPUsPerServer: 4,
		Failures: FailureConfig{MTTFSec: 7200, MTTRSec: 600, Seed: 3},
	}
	golden, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	withSnap := opts
	withSnap.SnapshotEvery = 50
	withSnap.SnapshotPath = snapPath
	if _, err := Run(withSnap); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(snapPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Counters.ZeroVolatile()
	golden.Counters.ZeroVolatile()
	if !reflect.DeepEqual(resumed, golden) {
		t.Fatalf("Resume diverged from Run:\n%+v\n%+v", resumed, golden)
	}

	if _, err := Resume(filepath.Join(t.TempDir(), "absent.snap"), opts); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}

	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	badPath := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(badPath, opts); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	other := opts
	other.Scheduler = "tiresias"
	if _, err := Resume(snapPath, other); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("mismatched run: %v", err)
	}
}
