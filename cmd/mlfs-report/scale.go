package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// scaleEntry mirrors one cell of results/BENCH_scale.json as written by
// mlfs-bench -scalebench: a (scheduler, jobs, servers) cell with its
// per-decision cost and peak-heap watermark.
type scaleEntry struct {
	Scheduler     string  `json:"scheduler"`
	Jobs          int     `json:"jobs"`
	Servers       int     `json:"servers"`
	GPUs          int     `json:"gpus"`
	WallSeconds   float64 `json:"wall_seconds"`
	Decisions     int     `json:"decisions"`
	NsPerDecision float64 `json:"ns_per_decision"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	SimulatedDays float64 `json:"simulated_days"`
	Completed     int     `json:"completed"`
	Truncated     int     `json:"truncated"`

	// Incremental-round telemetry (absent in pre-incremental files, so
	// all zero there and the renderer falls back to the legacy table).
	RoundUs           float64 `json:"round_us"`
	AvgDirtyJobs      float64 `json:"avg_dirty_jobs"`
	DirtyFraction     float64 `json:"dirty_fraction"`
	SkippedRounds     int     `json:"skipped_rounds"`
	FullRescanRoundUs float64 `json:"full_rescan_round_us"`
	RoundSpeedup      float64 `json:"round_speedup"`

	// Backlogged round-scan probe columns (see the scalebench entry
	// comment: whole workload as a standing backlog, 1% dirty/round).
	BacklogJobs            int     `json:"backlog_jobs"`
	BacklogDirtyFraction   float64 `json:"backlog_dirty_fraction"`
	BacklogRoundUs         float64 `json:"backlog_round_us"`
	BacklogFullRescanRound float64 `json:"backlog_full_rescan_round_us"`
	BacklogRoundSpeedup    float64 `json:"backlog_round_speedup"`
}

// scaleFile is the envelope of BENCH_scale.json.
type scaleFile struct {
	Headline string       `json:"headline"`
	Entries  []scaleEntry `json:"entries"`
}

func parseScaleJSON(path string) (*scaleFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf scaleFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(sf.Entries) == 0 {
		return nil, fmt.Errorf("%s: no entries", path)
	}
	return &sf, nil
}

// scaleTable renders the scale benchmark as one Markdown table: a row
// per (scheduler, jobs, servers) cell, wall clock, per-decision cost
// and peak heap side by side so the growth from 1k to 100k jobs reads
// straight down a column.
func scaleTable(sf *scaleFile) string {
	var sb strings.Builder
	sb.WriteString("### scale — per-decision cost and peak memory vs workload size\n\n")
	if sf.Headline != "" {
		fmt.Fprintf(&sb, "%s\n\n", sf.Headline)
	}
	hasRounds := false
	for _, e := range sf.Entries {
		if e.RoundUs > 0 {
			hasRounds = true
			break
		}
	}
	if hasRounds {
		sb.WriteString("| scheduler | jobs | servers | wall (s) | decisions | ns/decision | peak heap (MB) | round (µs) | rescan round (µs) | speedup | dirty/round | dirty % | backlog round (µs) | backlog rescan (µs) | backlog speedup | completed |\n")
		sb.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
		for _, e := range sf.Entries {
			fmt.Fprintf(&sb, "| %s | %d | %d | %.2f | %d | %.0f | %.1f | %.1f | %.1f | %.1fx | %.1f | %.2f | %.1f | %.1f | %.1fx | %d |\n",
				e.Scheduler, e.Jobs, e.Servers, e.WallSeconds, e.Decisions,
				e.NsPerDecision, e.PeakHeapMB, e.RoundUs, e.FullRescanRoundUs,
				e.RoundSpeedup, e.AvgDirtyJobs, e.DirtyFraction*100,
				e.BacklogRoundUs, e.BacklogFullRescanRound, e.BacklogRoundSpeedup, e.Completed)
		}
		sb.WriteString("\n")
		return sb.String()
	}
	sb.WriteString("| scheduler | jobs | servers | wall (s) | decisions | ns/decision | peak heap (MB) | sim days | completed | truncated |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, e := range sf.Entries {
		fmt.Fprintf(&sb, "| %s | %d | %d | %.2f | %d | %.0f | %.1f | %.1f | %d | %d |\n",
			e.Scheduler, e.Jobs, e.Servers, e.WallSeconds, e.Decisions,
			e.NsPerDecision, e.PeakHeapMB, e.SimulatedDays, e.Completed, e.Truncated)
	}
	sb.WriteString("\n")
	return sb.String()
}
