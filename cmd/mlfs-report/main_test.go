package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTSVAndTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig4b.tsv")
	content := "# fig4b: Average JCT (average JCT (min) vs number of jobs)\n" +
		"## mlfs\n155\t10.5\n310\t20.25\n" +
		"## slaq\n155\t99\n310\t200\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fig, err := parseTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if fig.id != "fig4b" || len(fig.series) != 2 {
		t.Fatalf("parsed %+v", fig)
	}
	if fig.series[0].label != "mlfs" || fig.series[0].points[1][1] != 20.25 {
		t.Fatalf("series wrong: %+v", fig.series[0])
	}
	md := table(fig)
	for _, want := range []string{"### fig4b", "| scheduler | 155 | 310 |", "| mlfs | 10.5 | 20.25 |", "| slaq |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("table missing %q:\n%s", want, md)
		}
	}
}

func TestParseTSVErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.tsv":     "# header only\n",
		"orphan.tsv":    "# h\n1\t2\n",
		"badcols.tsv":   "# h\n## s\n1\t2\t3\n",
		"badfloat.tsv":  "# h\n## s\nx\t2\n",
		"badfloat2.tsv": "# h\n## s\n1\ty\n",
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseTSV(p); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := parseTSV(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("missing file must error")
	}
}
