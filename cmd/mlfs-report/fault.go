package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// faultEntry mirrors one cell of results/BENCH_fault.json as written by
// mlfs-bench -faultbench: a (scheduler, MTTF) pair with its failure
// counters and JCT degradation relative to the same scheduler's
// MTTF=∞ baseline.
type faultEntry struct {
	Scheduler        string  `json:"scheduler"`
	MTTFSec          float64 `json:"mttf_sec"`
	AvgJCTMin        float64 `json:"avg_jct_min"`
	DegradationPct   float64 `json:"jct_degradation_pct"`
	DeadlineRatio    float64 `json:"deadline_ratio"`
	ServerFailures   int     `json:"server_failures"`
	FailureEvictions int     `json:"failure_evictions"`
	WorkLostIters    float64 `json:"work_lost_iters"`
	JobRestarts      int     `json:"job_restarts"`
	JobsKilled       int     `json:"jobs_killed"`
}

// faultFile is the envelope of BENCH_fault.json.
type faultFile struct {
	Jobs        int          `json:"jobs"`
	MTTRSec     float64      `json:"mttr_sec"`
	FailureSeed int64        `json:"failure_seed"`
	Entries     []faultEntry `json:"entries"`
}

func parseFaultJSON(path string) (*faultFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff faultFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(ff.Entries) == 0 {
		return nil, fmt.Errorf("%s: no entries", path)
	}
	return &ff, nil
}

// mttfLabel renders an MTTF in hours, with 0 meaning "no failures".
func mttfLabel(sec float64) string {
	if sec <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%gh", sec/3600)
}

// faultTable renders the fault benchmark as one Markdown table: a row
// per (scheduler, MTTF) cell, surfacing the failure counters and the
// JCT degradation against that scheduler's failure-free baseline.
func faultTable(ff *faultFile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### fault — JCT degradation and failure counters under server faults (%d jobs, MTTR %g min, failure seed %d)\n\n",
		ff.Jobs, ff.MTTRSec/60, ff.FailureSeed)
	sb.WriteString("| scheduler | MTTF | avg JCT (min) | ΔJCT vs ∞ | deadline ratio | server failures | evictions | restarts | jobs killed | work lost (iters) |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, e := range ff.Entries {
		fmt.Fprintf(&sb, "| %s | %s | %.4g | %+.1f%% | %.4g | %d | %d | %d | %d | %.4g |\n",
			e.Scheduler, mttfLabel(e.MTTFSec), e.AvgJCTMin, e.DegradationPct, e.DeadlineRatio,
			e.ServerFailures, e.FailureEvictions, e.JobRestarts, e.JobsKilled, e.WorkLostIters)
	}
	sb.WriteString("\n")
	return sb.String()
}
