// Command mlfs-report renders the TSV figure data written by mlfs-bench
// into Markdown tables, ready to paste into EXPERIMENTS.md.
//
//	mlfs-report -in results > results/summary.md
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// series is one parsed "## label" block of a TSV figure file.
type series struct {
	label  string
	points [][2]float64
}

// figure is one parsed TSV file.
type figure struct {
	id, header string
	series     []series
}

func parseTSV(path string) (*figure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fig := &figure{id: strings.TrimSuffix(filepath.Base(path), ".tsv")}
	var cur *series
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "## "):
			fig.series = append(fig.series, series{label: strings.TrimPrefix(line, "## ")})
			cur = &fig.series[len(fig.series)-1]
		case strings.HasPrefix(line, "# "):
			fig.header = strings.TrimPrefix(line, "# ")
		default:
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: data before series header", path, ln+1)
			}
			parts := strings.Split(line, "\t")
			if len(parts) != 2 {
				return nil, fmt.Errorf("%s:%d: want 2 columns, got %d", path, ln+1, len(parts))
			}
			x, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
			}
			y, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, ln+1, err)
			}
			cur.points = append(cur.points, [2]float64{x, y})
		}
	}
	if len(fig.series) == 0 {
		return nil, fmt.Errorf("%s: no series", path)
	}
	return fig, nil
}

// table renders a figure as a Markdown table: one row per series, one
// column per x value.
func table(fig *figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", fig.id, fig.header)
	xs := fig.series[0].points
	sb.WriteString("| scheduler |")
	for _, p := range xs {
		fmt.Fprintf(&sb, " %g |", p[0])
	}
	sb.WriteString("\n|---|")
	for range xs {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, s := range fig.series {
		fmt.Fprintf(&sb, "| %s |", s.label)
		for _, p := range s.points {
			fmt.Fprintf(&sb, " %.4g |", p[1])
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

func main() {
	in := flag.String("in", "results", "directory of TSV files from mlfs-bench")
	only := flag.String("only", "", "comma-separated figure ids (default: all)")
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*in, "*.tsv"))
	if err != nil {
		fatal(err)
	}
	faultPath := filepath.Join(*in, "BENCH_fault.json")
	if _, err := os.Stat(faultPath); err != nil {
		faultPath = ""
	}
	scalePath := filepath.Join(*in, "BENCH_scale.json")
	if _, err := os.Stat(scalePath); err != nil {
		scalePath = ""
	}
	servePath := filepath.Join(*in, "BENCH_serve.json")
	if _, err := os.Stat(servePath); err != nil {
		servePath = ""
	}
	if len(paths) == 0 && faultPath == "" && scalePath == "" && servePath == "" {
		fatal(fmt.Errorf("no TSV files, BENCH_fault.json, BENCH_scale.json or BENCH_serve.json in %s", *in))
	}
	sort.Strings(paths)
	var filter map[string]bool
	if *only != "" {
		filter = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".tsv")
		if filter != nil && !filter[id] {
			continue
		}
		// The CDF figures have too many x points for a readable table.
		if strings.HasSuffix(id, "a") && (strings.HasPrefix(id, "fig4") || strings.HasPrefix(id, "fig5")) {
			continue
		}
		fig, err := parseTSV(path)
		if err != nil {
			fatal(err)
		}
		fmt.Print(table(fig))
	}
	// The fault benchmark ships as JSON, not TSV: render its failure
	// counters last, under the figure id "fault".
	if faultPath != "" && (filter == nil || filter["fault"]) {
		ff, err := parseFaultJSON(faultPath)
		if err != nil {
			fatal(err)
		}
		fmt.Print(faultTable(ff))
	}
	// So does the scale benchmark, under the figure id "scale".
	if scalePath != "" && (filter == nil || filter["scale"]) {
		sf, err := parseScaleJSON(scalePath)
		if err != nil {
			fatal(err)
		}
		fmt.Print(scaleTable(sf))
	}
	// And the service benchmark, under the figure id "serve".
	if servePath != "" && (filter == nil || filter["serve"]) {
		sf, err := parseServeJSON(servePath)
		if err != nil {
			fatal(err)
		}
		fmt.Print(serveTable(sf))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-report:", err)
	os.Exit(1)
}
