package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseServeJSONAndTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	content := `{
		"generated_at": "2026-08-08T00:00:00Z",
		"headline": "replay: 210978 submissions/min, decision p99 46.873 ms",
		"entries": [
			{"mode": "replay", "jobs": 1000, "seed": 1,
			 "trace_duration_sec": 75000, "submitted": 1000,
			 "completed": 1000, "cancelled": 0, "wall_seconds": 77.8,
			 "submissions_per_min": 210978, "submit_p50_ms": 0.21,
			 "submit_p99_ms": 0.853, "decision_rounds": 3877,
			 "decision_p50_ms": 9.1, "decision_p99_ms": 46.873,
			 "decision_mean_ms": 12.4, "sim_time_sec": 432000,
			 "result": {"Scheduler": "mlfs", "AvgJCTSec": 6090}},
			{"mode": "open", "jobs": 200, "seed": 1,
			 "trace_duration_sec": 75000, "submitted": 200,
			 "completed": 200, "cancelled": 0, "wall_seconds": 40.1,
			 "submissions_per_min": 300, "submit_p50_ms": 0.3,
			 "submit_p99_ms": 1.2, "decision_rounds": 900,
			 "decision_p50_ms": 8.0, "decision_p99_ms": 40.0,
			 "decision_mean_ms": 11.0, "sim_time_sec": 90000,
			 "shed_submissions": 17, "server_shed_queue": 15,
			 "server_shed_lookahead": 2,
			 "replication_lag_records": 3, "replication_lag_seconds": 120.5,
			 "result": {"Scheduler": "mlfs", "AvgJCTSec": 6000}}
		]
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := parseServeJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Entries) != 2 || sf.Entries[0].Result.Scheduler != "mlfs" {
		t.Fatalf("parsed %+v", sf)
	}
	md := serveTable(sf)
	for _, want := range []string{
		"### serve — online service throughput and latency",
		"replay: 210978 submissions/min",
		"| mlfs | replay | 1000 | 77.80 | 210978 | 0.210 | 0.853 | 9.100 | 46.873 | 3877 | 1000 | 0 | 101.5 |",
		"#### backpressure",
		"| open | 200 | 17 | 15 | 2 |",
		"#### replication lag at drain",
		"| open | 200 | 3 | 120.5 |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("serve table missing %q:\n%s", want, md)
		}
	}
}

func TestServeTableOmitsEmptyDetailSections(t *testing.T) {
	sf := &serveFile{Entries: []serveEntry{{Mode: "replay", Jobs: 10}}}
	md := serveTable(sf)
	for _, banned := range []string{"#### backpressure", "#### replication lag"} {
		if strings.Contains(md, banned) {
			t.Fatalf("detail section %q rendered for a run with no sheds or lag:\n%s", banned, md)
		}
	}
}

func TestParseServeJSONErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "{not json",
		"empty.json":   `{"headline": "x", "entries": []}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseServeJSON(p); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := parseServeJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: expected error")
	}
}
