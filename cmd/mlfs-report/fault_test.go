package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFaultJSONAndTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_fault.json")
	content := `{
		"jobs": 155, "mttr_sec": 600, "failure_seed": 1,
		"entries": [
			{"scheduler": "mlfs", "mttf_sec": 0, "avg_jct_min": 101.5,
			 "jct_degradation_pct": 0, "deadline_ratio": 0.98,
			 "server_failures": 0, "failure_evictions": 0,
			 "work_lost_iters": 0, "job_restarts": 0, "jobs_killed": 0},
			{"scheduler": "mlfs", "mttf_sec": 21600, "avg_jct_min": 112.25,
			 "jct_degradation_pct": 10.1, "deadline_ratio": 0.96,
			 "server_failures": 32, "failure_evictions": 137,
			 "work_lost_iters": 3105.5, "job_restarts": 75, "jobs_killed": 3}
		]
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ff, err := parseFaultJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ff.Entries) != 2 || ff.Entries[1].ServerFailures != 32 {
		t.Fatalf("parsed %+v", ff)
	}
	md := faultTable(ff)
	for _, want := range []string{
		"155 jobs, MTTR 10 min, failure seed 1",
		"| mlfs | ∞ | 101.5 | +0.0% |",
		"| mlfs | 6h | 112.2 | +10.1% | 0.96 | 32 | 137 | 75 | 3 | 3106 |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("fault table missing %q:\n%s", want, md)
		}
	}
}

func TestParseFaultJSONErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "{not json",
		"empty.json":   `{"jobs": 1, "entries": []}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := parseFaultJSON(p); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := parseFaultJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
