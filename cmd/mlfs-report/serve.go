package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// serveEntry mirrors one entry of results/BENCH_serve.json as written
// by mlfs-loadgen -json: one load-generator run against a live
// mlfs-serve instance, with client-observed submit latency and the
// server's decision-latency histogram quantiles.
type serveEntry struct {
	Mode        string  `json:"mode"`
	Jobs        int     `json:"jobs"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"trace_duration_sec"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`

	WallSeconds       float64 `json:"wall_seconds"`
	SubmissionsPerMin float64 `json:"submissions_per_min"`

	SubmitP50Ms float64 `json:"submit_p50_ms"`
	SubmitP99Ms float64 `json:"submit_p99_ms"`

	DecisionRounds int     `json:"decision_rounds"`
	DecisionP50Ms  float64 `json:"decision_p50_ms"`
	DecisionP99Ms  float64 `json:"decision_p99_ms"`
	DecisionMeanMs float64 `json:"decision_mean_ms"`

	SimTimeSec float64 `json:"sim_time_sec"`

	Shed                  int     `json:"shed_submissions"`
	ServerShedQueue       int     `json:"server_shed_queue"`
	ServerShedLookahead   int     `json:"server_shed_lookahead"`
	ReplicationLagRecords int     `json:"replication_lag_records"`
	ReplicationLagSeconds float64 `json:"replication_lag_seconds"`

	// The final /v1/result; metrics.Result marshals with Go field
	// names, so only the columns the table needs are decoded.
	Result struct {
		Scheduler string
		AvgJCTSec float64
	} `json:"result"`
}

// serveFile is the envelope of BENCH_serve.json.
type serveFile struct {
	Headline string       `json:"headline"`
	Entries  []serveEntry `json:"entries"`
}

func parseServeJSON(path string) (*serveFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf serveFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(sf.Entries) == 0 {
		return nil, fmt.Errorf("%s: no entries", path)
	}
	return &sf, nil
}

// serveTable renders the service benchmark as one Markdown table: a
// row per load-generator run, throughput and both latency
// distributions side by side.
func serveTable(sf *serveFile) string {
	var sb strings.Builder
	sb.WriteString("### serve — online service throughput and latency\n\n")
	if sf.Headline != "" {
		fmt.Fprintf(&sb, "%s\n\n", sf.Headline)
	}
	sb.WriteString("| scheduler | mode | jobs | wall (s) | submissions/min | submit p50 (ms) | submit p99 (ms) | decision p50 (ms) | decision p99 (ms) | rounds | completed | shed | avg JCT (min) |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	shedSeen, lagSeen := false, false
	for _, e := range sf.Entries {
		fmt.Fprintf(&sb, "| %s | %s | %d | %.2f | %.0f | %.3f | %.3f | %.3f | %.3f | %d | %d | %d | %.1f |\n",
			e.Result.Scheduler, e.Mode, e.Jobs, e.WallSeconds, e.SubmissionsPerMin,
			e.SubmitP50Ms, e.SubmitP99Ms, e.DecisionP50Ms, e.DecisionP99Ms,
			e.DecisionRounds, e.Completed, e.Shed, e.Result.AvgJCTSec/60)
		shedSeen = shedSeen || e.Shed > 0 || e.ServerShedQueue > 0 || e.ServerShedLookahead > 0
		lagSeen = lagSeen || e.ReplicationLagRecords > 0 || e.ReplicationLagSeconds > 0
	}
	sb.WriteString("\n")
	// Backpressure and replication detail rows, rendered only when a
	// run actually shed load or trailed a primary — a plain replay
	// benchmark keeps its table unchanged.
	if shedSeen {
		sb.WriteString("#### backpressure\n\n")
		sb.WriteString("| mode | jobs | shed (client 429s) | server shed: queue | server shed: lookahead |\n")
		sb.WriteString("|---|---|---|---|---|\n")
		for _, e := range sf.Entries {
			fmt.Fprintf(&sb, "| %s | %d | %d | %d | %d |\n",
				e.Mode, e.Jobs, e.Shed, e.ServerShedQueue, e.ServerShedLookahead)
		}
		sb.WriteString("\n")
	}
	if lagSeen {
		sb.WriteString("#### replication lag at drain\n\n")
		sb.WriteString("| mode | jobs | lag (records) | lag (sim-seconds) |\n")
		sb.WriteString("|---|---|---|---|\n")
		for _, e := range sf.Entries {
			fmt.Fprintf(&sb, "| %s | %d | %d | %.1f |\n",
				e.Mode, e.Jobs, e.ReplicationLagRecords, e.ReplicationLagSeconds)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
