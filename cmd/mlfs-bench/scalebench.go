package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"mlfs"
)

// The scale benchmark measures how the simulator's per-decision cost
// and memory footprint grow with workload size: Philly-scale job counts
// (up to the trace's 100k+ submissions) on the paper's two cluster
// scales, streamed through the synthetic Philly source so no run ever
// materialises its whole workload. The headline number is the
// ns-per-decision growth from 1k to 100k jobs — flat-ish growth is the
// evidence that the sparse core's per-decision cost tracks live jobs,
// not total submissions.

// scaleBenchJobs and scaleBenchServers define the default sweep.
var (
	scaleBenchJobs    = []int{1_000, 10_000, 100_000}
	scaleBenchServers = []int{55, 550}
)

// scaleBenchSchedulers are the policies profiled: the two classic
// references plus the paper's heuristic core. (MLF-RL trains a neural
// policy per decision; its cost is profiled separately by -nnbench.)
var scaleBenchSchedulers = []string{"fifo", "srtf", "mlf-h"}

// scaleBenchEntry is one (scheduler, jobs, servers) cell. The round_*
// columns profile the incremental dirty-set rounds: every cell also runs
// a FullRescan oracle twin (bit-identical results, enforced below) whose
// per-round cost anchors the speedup column.
type scaleBenchEntry struct {
	Scheduler     string  `json:"scheduler"`
	Jobs          int     `json:"jobs"`
	Servers       int     `json:"servers"`
	GPUs          int     `json:"gpus"`
	WallSeconds   float64 `json:"wall_seconds"`
	Decisions     int     `json:"decisions"` // placements + migrations + evictions + scheduling rounds
	NsPerDecision float64 `json:"ns_per_decision"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	SimulatedDays float64 `json:"simulated_days"`
	AvgJCTMin     float64 `json:"avg_jct_min"`
	Completed     int     `json:"completed"` // jobs that ran to completion (neither truncated nor rejected)
	Truncated     int     `json:"truncated"`
	Rejected      int     `json:"rejected"`

	SchedRounds       int     `json:"sched_rounds"`
	RoundUs           float64 `json:"round_us"`             // avg wall µs per scheduling round (incremental)
	AvgDirtyJobs      float64 `json:"avg_dirty_jobs"`       // avg dirty-set size delivered per round
	DirtyFraction     float64 `json:"dirty_fraction"`       // AvgDirtyJobs / workload size
	SkippedRounds     int     `json:"skipped_rounds"`       // rounds proven no-ops (fifo/srtf skip proofs)
	FullRescanRoundUs float64 `json:"full_rescan_round_us"` // oracle twin's avg round µs
	RoundSpeedup      float64 `json:"round_speedup"`        // FullRescanRoundUs / RoundUs

	// The backlog_round_* columns come from the round-scan probe
	// (mlfs.RoundScanBench): the whole workload admitted as a standing
	// backlog, 1% of jobs re-marked dirty per round. The keep-up columns
	// above measure rounds dominated by placement and migration work both
	// modes share; the probe isolates the scan-and-rank component, where
	// the dirty-set structure is the difference between O(dirty) and
	// O(backlog) — the regime of the incremental-round acceptance bar.
	BacklogJobs            int     `json:"backlog_jobs"`                 // standing backlog the probe measures against
	BacklogDirtyFraction   float64 `json:"backlog_dirty_fraction"`       // fraction of jobs re-marked dirty per probe round
	BacklogRoundUs         float64 `json:"backlog_round_us"`             // incremental probe round µs
	BacklogFullRescanRound float64 `json:"backlog_full_rescan_round_us"` // oracle probe round µs
	BacklogRoundSpeedup    float64 `json:"backlog_round_speedup"`        // oracle / incremental
}

// scaleBenchReport is the BENCH_scale.json schema.
type scaleBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Seed        int64             `json:"seed"`
	Headline    string            `json:"headline"`
	Entries     []scaleBenchEntry `json:"entries"`
}

// runScaleBench sweeps schedulers × job counts × cluster sizes and
// writes BENCH_scale.json. Every cell streams a synthetic Philly
// workload (seeded, so every scheduler at a given size faces the
// identical submission sequence) over an arrival window scaled to keep
// cluster pressure comparable across sizes.
func runScaleBench(path string, seed int64, jobCounts, serverCounts []int, schedulers []string) error {
	report := scaleBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}
	for _, servers := range serverCounts {
		for _, jobs := range jobCounts {
			for _, schedName := range schedulers {
				entry, err := scaleBenchCell(schedName, jobs, servers, seed)
				if err != nil {
					return err
				}
				report.Entries = append(report.Entries, entry)
				fmt.Printf("scalebench %-7s jobs=%-7d servers=%-4d wall %8.2fs  %9.0f ns/decision  peak heap %7.1f MB  round %9.1fµs (oracle %9.1fµs, %4.1fx)  dirty/round %7.1f  backlog round %9.1fµs (oracle %11.1fµs, %5.1fx)\n",
					schedName, jobs, servers, entry.WallSeconds, entry.NsPerDecision, entry.PeakHeapMB,
					entry.RoundUs, entry.FullRescanRoundUs, entry.RoundSpeedup, entry.AvgDirtyJobs,
					entry.BacklogRoundUs, entry.BacklogFullRescanRound, entry.BacklogRoundSpeedup)
			}
		}
	}
	report.Headline = scaleHeadline(report.Entries)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s -> %s\n", "scalebench", path)
	if report.Headline != "" {
		fmt.Println(report.Headline)
	}
	return nil
}

// phillyDuration returns the arrival window that reproduces the real
// Philly trace's submission density — 117,325 jobs over 18 weeks on
// 2474 GPUs — rescaled to the cell's GPU count. At this density the
// cluster keeps up with arrivals, so the live-job population is set by
// the workload's natural concurrency, not by an ever-growing backlog;
// that is the regime in which ns-per-decision isolates the scheduler's
// per-decision cost. (DurationForCluster's pressure calibration is ~30×
// denser: it measures behaviour under sustained overload, where cost is
// dominated by backlog length and grows with total submissions.)
func phillyDuration(jobs, gpus int) float64 {
	const phillyJobSpacingSec = 18 * 7 * 24 * 3600.0 / 117_325 // ≈92.8 s per job at 2474 GPUs
	return float64(jobs) * phillyJobSpacingSec * 2474 / float64(gpus)
}

// scaleBenchCell runs one cell under a heap-watermark sampler: once with
// the default incremental rounds (the headline numbers), once with the
// FullRescan oracle. The twin must reproduce the incremental run's
// results bit for bit — the cell fails otherwise, so every regeneration
// of BENCH_scale.json re-proves the equivalence contract at full scale.
func scaleBenchCell(schedName string, jobs, servers int, seed int64) (scaleBenchEntry, error) {
	gpus := servers * 4
	cellOpts := func(fullRescan bool) mlfs.Options {
		return mlfs.Options{
			Scheduler:     schedName,
			Seed:          seed,
			SchedOpts:     mlfs.SchedulerOptions{Seed: seed},
			Servers:       servers,
			GPUsPerServer: 4,
			Source:        mlfs.SyntheticPhillySource(jobs, seed, phillyDuration(jobs, gpus)),
			FullRescan:    fullRescan,
		}
	}
	// Collect the previous cell's garbage (the round probes admit whole
	// workloads) before the watcher starts sampling, so the watermark
	// measures this cell only.
	runtime.GC()
	stop, peak := watchHeap()
	start := time.Now()
	res, err := mlfs.Run(cellOpts(false))
	wall := time.Since(start)
	stop()
	if err != nil {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d: %w", schedName, jobs, servers, err)
	}
	oracle, err := mlfs.Run(cellOpts(true))
	if err != nil {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d (full rescan): %w", schedName, jobs, servers, err)
	}
	if res.AvgJCTSec != oracle.AvgJCTSec || res.MakespanSec != oracle.MakespanSec || //mlfs:allow floatcmp oracle contract is bit-identity, not tolerance
		res.Counters.Placements != oracle.Counters.Placements ||
		res.Counters.Migrations != oracle.Counters.Migrations {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d: incremental run diverged from the full-rescan oracle (JCT %v vs %v)",
			schedName, jobs, servers, res.AvgJCTSec, oracle.AvgJCTSec)
	}
	c := res.Counters
	decisions := c.Placements + c.Migrations + c.Evictions + c.SchedRounds
	entry := scaleBenchEntry{
		Scheduler:     schedName,
		Jobs:          jobs,
		Servers:       servers,
		GPUs:          gpus,
		WallSeconds:   wall.Seconds(),
		Decisions:     decisions,
		PeakHeapMB:    float64(peak.Load()) / (1 << 20),
		SimulatedDays: c.SimulatedSec / 86400,
		AvgJCTMin:     res.AvgJCTSec / 60,
		Completed:     res.Jobs - c.Truncated - c.Rejected,
		Truncated:     c.Truncated,
		Rejected:      c.Rejected,
		SchedRounds:   c.SchedRounds,
		SkippedRounds: c.SkippedRounds,
	}
	if decisions > 0 {
		entry.NsPerDecision = float64(wall.Nanoseconds()) / float64(decisions)
	}
	if c.SchedRounds > 0 {
		entry.RoundUs = c.SchedSeconds / float64(c.SchedRounds) * 1e6
		entry.AvgDirtyJobs = float64(c.DirtyJobs) / float64(c.SchedRounds)
		entry.DirtyFraction = entry.AvgDirtyJobs / float64(jobs)
	}
	if oc := oracle.Counters; oc.SchedRounds > 0 {
		entry.FullRescanRoundUs = oc.SchedSeconds / float64(oc.SchedRounds) * 1e6
	}
	if entry.RoundUs > 0 && entry.FullRescanRoundUs > 0 {
		entry.RoundSpeedup = entry.FullRescanRoundUs / entry.RoundUs
	}

	// Backlogged round-scan probe, incremental vs full-rescan oracle on
	// the identical standing backlog. The Placements checksum pins the
	// two probes to the same decision sequence.
	const backlogDirtyFrac = 0.01
	const probeRounds = 3
	probe, err := mlfs.RoundScanBench(cellOpts(false), backlogDirtyFrac, probeRounds)
	if err != nil {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d (round probe): %w", schedName, jobs, servers, err)
	}
	oracleProbe, err := mlfs.RoundScanBench(cellOpts(true), backlogDirtyFrac, probeRounds)
	if err != nil {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d (round probe oracle): %w", schedName, jobs, servers, err)
	}
	if probe.Placements != oracleProbe.Placements || probe.Backlog != oracleProbe.Backlog {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d: round probe diverged from its full-rescan oracle (placements %d vs %d)",
			schedName, jobs, servers, probe.Placements, oracleProbe.Placements)
	}
	entry.BacklogJobs = probe.Backlog
	entry.BacklogDirtyFraction = backlogDirtyFrac
	entry.BacklogRoundUs = probe.RoundSec * 1e6
	entry.BacklogFullRescanRound = oracleProbe.RoundSec * 1e6
	if entry.BacklogRoundUs > 0 {
		entry.BacklogRoundSpeedup = entry.BacklogFullRescanRound / entry.BacklogRoundUs
	}
	return entry, nil
}

// watchHeap samples the live-heap watermark until stop is called. The
// returned atomic holds the peak HeapAlloc observed (bytes) — an
// in-process proxy for peak RSS that excludes GC headroom, comparable
// across cells because every cell runs the same sampler.
func watchHeap() (stop func(), peak *atomic.Uint64) {
	peak = &atomic.Uint64{}
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := peak.Load()
			if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() { close(done); <-finished }, peak
}

// humanCount renders a job count compactly (100000 -> "100k").
func humanCount(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// scaleHeadline summarises the acceptance criterion: per-scheduler
// ns-per-decision growth from the smallest to the largest job count on
// the largest cluster.
func scaleHeadline(entries []scaleBenchEntry) string {
	maxServers, minJobs, maxJobs := 0, 0, 0
	for _, e := range entries {
		if e.Servers > maxServers {
			maxServers = e.Servers
		}
		if minJobs == 0 || e.Jobs < minJobs {
			minJobs = e.Jobs
		}
		if e.Jobs > maxJobs {
			maxJobs = e.Jobs
		}
	}
	if minJobs == maxJobs {
		return ""
	}
	at := func(sched string, jobs int) float64 {
		for _, e := range entries {
			if e.Scheduler == sched && e.Jobs == jobs && e.Servers == maxServers {
				return e.NsPerDecision
			}
		}
		return 0
	}
	out := fmt.Sprintf("ns/decision growth %s->%s jobs at %d servers:", humanCount(minJobs), humanCount(maxJobs), maxServers)
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Scheduler] {
			continue
		}
		seen[e.Scheduler] = true
		small, big := at(e.Scheduler, minJobs), at(e.Scheduler, maxJobs)
		if small > 0 && big > 0 {
			out += fmt.Sprintf(" %s %.2fx", e.Scheduler, big/small)
		}
	}
	speedups := ""
	for _, e := range entries {
		if e.Jobs == maxJobs && e.Servers == maxServers && e.RoundSpeedup > 0 {
			speedups += fmt.Sprintf(" %s %.1fx (dirty %.2f%%)", e.Scheduler, e.RoundSpeedup, e.DirtyFraction*100)
		}
	}
	if speedups != "" {
		out += fmt.Sprintf("; keep-up round speedup vs full-rescan oracle at %s jobs / %d servers:%s",
			humanCount(maxJobs), maxServers, speedups)
	}
	backlog := ""
	for _, e := range entries {
		if e.Jobs == maxJobs && e.Servers == maxServers && e.BacklogRoundSpeedup > 0 {
			backlog += fmt.Sprintf(" %s %.1fx (dirty %.0f%%)", e.Scheduler, e.BacklogRoundSpeedup, e.BacklogDirtyFraction*100)
		}
	}
	if backlog != "" {
		out += fmt.Sprintf("; backlogged round-scan speedup at %s jobs / %d servers:%s",
			humanCount(maxJobs), maxServers, backlog)
	}
	return out
}
