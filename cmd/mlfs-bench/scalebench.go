package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"mlfs"
)

// The scale benchmark measures how the simulator's per-decision cost
// and memory footprint grow with workload size: Philly-scale job counts
// (up to the trace's 100k+ submissions) on the paper's two cluster
// scales, streamed through the synthetic Philly source so no run ever
// materialises its whole workload. The headline number is the
// ns-per-decision growth from 1k to 100k jobs — flat-ish growth is the
// evidence that the sparse core's per-decision cost tracks live jobs,
// not total submissions.

// scaleBenchJobs and scaleBenchServers define the default sweep.
var (
	scaleBenchJobs    = []int{1_000, 10_000, 100_000}
	scaleBenchServers = []int{55, 550}
)

// scaleBenchSchedulers are the policies profiled: the two classic
// references plus the paper's heuristic core. (MLF-RL trains a neural
// policy per decision; its cost is profiled separately by -nnbench.)
var scaleBenchSchedulers = []string{"fifo", "srtf", "mlf-h"}

// scaleBenchEntry is one (scheduler, jobs, servers) cell.
type scaleBenchEntry struct {
	Scheduler     string  `json:"scheduler"`
	Jobs          int     `json:"jobs"`
	Servers       int     `json:"servers"`
	GPUs          int     `json:"gpus"`
	WallSeconds   float64 `json:"wall_seconds"`
	Decisions     int     `json:"decisions"` // placements + migrations + evictions + scheduling rounds
	NsPerDecision float64 `json:"ns_per_decision"`
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	SimulatedDays float64 `json:"simulated_days"`
	AvgJCTMin     float64 `json:"avg_jct_min"`
	Completed     int     `json:"completed"` // jobs that ran to completion (neither truncated nor rejected)
	Truncated     int     `json:"truncated"`
	Rejected      int     `json:"rejected"`
}

// scaleBenchReport is the BENCH_scale.json schema.
type scaleBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Seed        int64             `json:"seed"`
	Headline    string            `json:"headline"`
	Entries     []scaleBenchEntry `json:"entries"`
}

// runScaleBench sweeps schedulers × job counts × cluster sizes and
// writes BENCH_scale.json. Every cell streams a synthetic Philly
// workload (seeded, so every scheduler at a given size faces the
// identical submission sequence) over an arrival window scaled to keep
// cluster pressure comparable across sizes.
func runScaleBench(path string, seed int64, jobCounts, serverCounts []int, schedulers []string) error {
	report := scaleBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}
	for _, servers := range serverCounts {
		for _, jobs := range jobCounts {
			for _, schedName := range schedulers {
				entry, err := scaleBenchCell(schedName, jobs, servers, seed)
				if err != nil {
					return err
				}
				report.Entries = append(report.Entries, entry)
				fmt.Printf("scalebench %-7s jobs=%-7d servers=%-4d wall %8.2fs  %9.0f ns/decision  peak heap %7.1f MB\n",
					schedName, jobs, servers, entry.WallSeconds, entry.NsPerDecision, entry.PeakHeapMB)
			}
		}
	}
	report.Headline = scaleHeadline(report.Entries)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s -> %s\n", "scalebench", path)
	if report.Headline != "" {
		fmt.Println(report.Headline)
	}
	return nil
}

// phillyDuration returns the arrival window that reproduces the real
// Philly trace's submission density — 117,325 jobs over 18 weeks on
// 2474 GPUs — rescaled to the cell's GPU count. At this density the
// cluster keeps up with arrivals, so the live-job population is set by
// the workload's natural concurrency, not by an ever-growing backlog;
// that is the regime in which ns-per-decision isolates the scheduler's
// per-decision cost. (DurationForCluster's pressure calibration is ~30×
// denser: it measures behaviour under sustained overload, where cost is
// dominated by backlog length and grows with total submissions.)
func phillyDuration(jobs, gpus int) float64 {
	const phillyJobSpacingSec = 18 * 7 * 24 * 3600.0 / 117_325 // ≈92.8 s per job at 2474 GPUs
	return float64(jobs) * phillyJobSpacingSec * 2474 / float64(gpus)
}

// scaleBenchCell runs one cell under a heap-watermark sampler.
func scaleBenchCell(schedName string, jobs, servers int, seed int64) (scaleBenchEntry, error) {
	gpus := servers * 4
	opts := mlfs.Options{
		Scheduler:     schedName,
		Seed:          seed,
		SchedOpts:     mlfs.SchedulerOptions{Seed: seed},
		Servers:       servers,
		GPUsPerServer: 4,
		Source:        mlfs.SyntheticPhillySource(jobs, seed, phillyDuration(jobs, gpus)),
	}
	stop, peak := watchHeap()
	runtime.GC()
	start := time.Now()
	res, err := mlfs.Run(opts)
	wall := time.Since(start)
	stop()
	if err != nil {
		return scaleBenchEntry{}, fmt.Errorf("scalebench %s jobs=%d servers=%d: %w", schedName, jobs, servers, err)
	}
	c := res.Counters
	decisions := c.Placements + c.Migrations + c.Evictions + c.SchedRounds
	entry := scaleBenchEntry{
		Scheduler:     schedName,
		Jobs:          jobs,
		Servers:       servers,
		GPUs:          gpus,
		WallSeconds:   wall.Seconds(),
		Decisions:     decisions,
		PeakHeapMB:    float64(peak.Load()) / (1 << 20),
		SimulatedDays: c.SimulatedSec / 86400,
		AvgJCTMin:     res.AvgJCTSec / 60,
		Completed:     res.Jobs - c.Truncated - c.Rejected,
		Truncated:     c.Truncated,
		Rejected:      c.Rejected,
	}
	if decisions > 0 {
		entry.NsPerDecision = float64(wall.Nanoseconds()) / float64(decisions)
	}
	return entry, nil
}

// watchHeap samples the live-heap watermark until stop is called. The
// returned atomic holds the peak HeapAlloc observed (bytes) — an
// in-process proxy for peak RSS that excludes GC headroom, comparable
// across cells because every cell runs the same sampler.
func watchHeap() (stop func(), peak *atomic.Uint64) {
	peak = &atomic.Uint64{}
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := peak.Load()
			if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
				return
			}
		}
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() { close(done); <-finished }, peak
}

// humanCount renders a job count compactly (100000 -> "100k").
func humanCount(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprintf("%d", n)
}

// scaleHeadline summarises the acceptance criterion: per-scheduler
// ns-per-decision growth from the smallest to the largest job count on
// the largest cluster.
func scaleHeadline(entries []scaleBenchEntry) string {
	maxServers, minJobs, maxJobs := 0, 0, 0
	for _, e := range entries {
		if e.Servers > maxServers {
			maxServers = e.Servers
		}
		if minJobs == 0 || e.Jobs < minJobs {
			minJobs = e.Jobs
		}
		if e.Jobs > maxJobs {
			maxJobs = e.Jobs
		}
	}
	if minJobs == maxJobs {
		return ""
	}
	at := func(sched string, jobs int) float64 {
		for _, e := range entries {
			if e.Scheduler == sched && e.Jobs == jobs && e.Servers == maxServers {
				return e.NsPerDecision
			}
		}
		return 0
	}
	out := fmt.Sprintf("ns/decision growth %s->%s jobs at %d servers:", humanCount(minJobs), humanCount(maxJobs), maxServers)
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Scheduler] {
			continue
		}
		seen[e.Scheduler] = true
		small, big := at(e.Scheduler, minJobs), at(e.Scheduler, maxJobs)
		if small > 0 && big > 0 {
			out += fmt.Sprintf(" %s %.2fx", e.Scheduler, big/small)
		}
	}
	return out
}
