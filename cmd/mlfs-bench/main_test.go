package main

import (
	"reflect"
	"testing"
)

func TestParseMTTFs(t *testing.T) {
	got, err := parseMTTFs("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, faultBenchMTTFs) {
		t.Fatalf("empty override must keep the default sweep, got %v", got)
	}

	got, err = parseMTTFs("0, 21600,7200")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 21600, 7200}; !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMTTFs = %v, want %v", got, want)
	}

	if _, err := parseMTTFs("abc"); err == nil {
		t.Fatal("non-numeric MTTF must error")
	}
	if _, err := parseMTTFs("3600,-1"); err == nil {
		t.Fatal("negative MTTF must error")
	}
}
