package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mlfs"
)

// faultBenchMTTFs is the MTTF sweep (seconds): no failures, then one
// failure per server-day, per-6-hours and per-2-hours — from Philly-like
// reliability down to a hostile cluster.
var faultBenchMTTFs = []float64{0, 86400, 21600, 7200}

// faultBenchSchedulers are the policies compared under failures: MLFS
// and its heuristic core against the time-quantum and packing baselines
// the paper leans on.
var faultBenchSchedulers = []string{"mlfs", "mlf-h", "tiresias", "gandiva", "tensorflow"}

// faultBenchEntry is one (scheduler, MTTF) cell of the degradation sweep.
type faultBenchEntry struct {
	Scheduler        string  `json:"scheduler"`
	MTTFSec          float64 `json:"mttf_sec"` // 0 = failure-free baseline
	AvgJCTMin        float64 `json:"avg_jct_min"`
	DegradationPct   float64 `json:"jct_degradation_pct"` // vs the same scheduler at MTTF=0
	DeadlineRatio    float64 `json:"deadline_ratio"`
	ServerFailures   int     `json:"server_failures"`
	FailureEvictions int     `json:"failure_evictions"`
	WorkLostIters    float64 `json:"work_lost_iters"`
	JobRestarts      int     `json:"job_restarts"`
	JobsKilled       int     `json:"jobs_killed"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// faultBenchReport is the BENCH_fault.json schema.
type faultBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Seed        int64             `json:"seed"`
	Jobs        int               `json:"jobs"`
	MTTRSec     float64           `json:"mttr_sec"`
	FailureSeed int64             `json:"failure_seed"`
	Entries     []faultBenchEntry `json:"entries"`
}

// faultBenchConfig parameterises the MTTF degradation sweep.
type faultBenchConfig struct {
	Path  string // BENCH_fault.json destination
	Seed  int64
	Jobs  int
	MTTFs []float64 // sweep values; 0 = failure-free baseline
	// SnapshotEvery > 0 writes a per-cell snapshot into SnapshotDir every
	// N ticks; Resume continues interrupted cells from those snapshots
	// (bit-identical to uninterrupted runs), restarting from zero — with
	// a warning — when a snapshot is missing or corrupt.
	SnapshotEvery int
	SnapshotDir   string
	Resume        bool
}

// runFaultBench sweeps JCT degradation versus MTTF for every scheduler
// under the identical workload and identical failure traces, and writes
// BENCH_fault.json. Every cell of a given MTTF column faces the same
// failure event sequence (the fault process is seeded independently of
// the policy), so differences are pure scheduling quality under churn.
func runFaultBench(cfg faultBenchConfig) error {
	const mttrSec = 600
	seed, jobs := cfg.Seed, cfg.Jobs
	if cfg.SnapshotEvery > 0 {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return err
		}
	}
	report := faultBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		Jobs:        jobs,
		MTTRSec:     mttrSec,
		FailureSeed: seed,
	}
	tr := mlfs.GenerateTrace(jobs, seed, mlfs.DefaultTraceDuration(jobs))
	baseJCT := make(map[string]float64)
	for _, schedName := range faultBenchSchedulers {
		for _, mttf := range cfg.MTTFs {
			opts := mlfs.Options{
				Scheduler: schedName,
				Seed:      seed,
				SchedOpts: mlfs.SchedulerOptions{Seed: seed},
				Preset:    mlfs.PaperReal,
				Trace:     tr,
			}
			if mttf > 0 {
				opts.Failures = mlfs.FailureConfig{MTTFSec: mttf, MTTRSec: mttrSec, Seed: seed}
			}
			snapPath := filepath.Join(cfg.SnapshotDir, fmt.Sprintf("%s-mttf%.0f.snap", schedName, mttf))
			if cfg.SnapshotEvery > 0 {
				opts.SnapshotEvery = cfg.SnapshotEvery
				opts.SnapshotPath = snapPath
			}
			start := time.Now()
			res, err := faultBenchCell(opts, snapPath, cfg.Resume)
			if err != nil {
				return err
			}
			entry := faultBenchEntry{
				Scheduler:        schedName,
				MTTFSec:          mttf,
				AvgJCTMin:        res.AvgJCTSec / 60,
				DeadlineRatio:    res.DeadlineRatio,
				ServerFailures:   res.Counters.ServerFailures,
				FailureEvictions: res.Counters.FailureEvictions,
				WorkLostIters:    res.Counters.WorkLostIters,
				JobRestarts:      res.Counters.JobRestarts,
				JobsKilled:       res.Counters.JobsKilled,
				WallSeconds:      time.Since(start).Seconds(),
			}
			if mttf == 0 {
				baseJCT[schedName] = res.AvgJCTSec
			} else if base := baseJCT[schedName]; base > 0 {
				entry.DegradationPct = (res.AvgJCTSec - base) / base * 100
			}
			report.Entries = append(report.Entries, entry)
			fmt.Printf("faultbench %-10s mttf=%6.0fs  avgJCT %7.1f min  (+%5.1f%%)  fail=%d lost=%.0f restarts=%d kills=%d\n",
				schedName, mttf, entry.AvgJCTMin, entry.DegradationPct,
				entry.ServerFailures, entry.WorkLostIters, entry.JobRestarts, entry.JobsKilled)
		}
	}
	f, err := os.Create(cfg.Path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s -> %s\n", "faultbench", cfg.Path)
	return nil
}

// faultBenchCell runs one sweep cell, resuming from its snapshot when
// asked. Resume is best-effort: a cell whose snapshot is absent,
// corrupt or from another format version restarts from zero with a
// warning, keeping the sweep as a whole restartable even when individual
// snapshots did not survive the interruption.
func faultBenchCell(opts mlfs.Options, snapPath string, resume bool) (*mlfs.Result, error) {
	if !resume {
		return mlfs.Run(opts)
	}
	if _, err := os.Stat(snapPath); err != nil {
		return mlfs.Run(opts)
	}
	res, err := mlfs.Resume(snapPath, opts)
	if errors.Is(err, mlfs.ErrSnapshotCorrupt) || errors.Is(err, mlfs.ErrSnapshotVersion) {
		fmt.Fprintf(os.Stderr, "mlfs-bench: warning: snapshot %s unusable (%v); restarting from zero\n", snapPath, err)
		return mlfs.Run(opts)
	}
	return res, err
}
