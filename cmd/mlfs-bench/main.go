// Command mlfs-bench regenerates every figure of the paper's evaluation
// (Figs. 4–9 plus the in-text makespan comparison), writes one TSV per
// figure into -out, and checks the measured results against the paper's
// expected orderings (shape.txt).
//
// Examples:
//
//	mlfs-bench -out results/                   # everything, Figure-4 scale
//	mlfs-bench -out results/ -figure fig4      # just the Figure-4 family
//	mlfs-bench -out results/ -scale 100        # Figure 5 at 1/100 job counts
//	mlfs-bench -out results/ -quick -ascii     # fast pass with ASCII charts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mlfs"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory for TSV files")
		figure   = flag.String("figure", "all", "fig4, fig5, fig6..fig9, makespan, or all")
		scale    = flag.Int("scale", 100, "divisor for Figure 5 job counts (1 = paper scale)")
		seed     = flag.Int64("seed", 1, "workload and policy seed")
		quick    = flag.Bool("quick", false, "use reduced job counts everywhere")
		schedCS  = flag.String("schedulers", "", "comma-separated scheduler subset (default: all)")
		ascii    = flag.Bool("ascii", false, "also print each figure as an ASCII chart")
		countsCS = flag.String("counts", "", "override Figure 4/6-9 job counts (comma-separated)")
		simMax   = flag.Int("sim-counts", 3, "how many Figure 5 job counts to run (1-5)")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	schedulers := mlfs.SchedulerNames()
	if *schedCS != "" {
		schedulers = strings.Split(*schedCS, ",")
	}
	realCounts := mlfs.PaperRealJobCounts()
	if *quick {
		realCounts = []int{40, 80, 155}
	}
	if *countsCS != "" {
		realCounts = nil
		for _, p := range strings.Split(*countsCS, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fatal(fmt.Errorf("bad count %q", p))
			}
			realCounts = append(realCounts, v)
		}
	}
	simCounts := mlfs.PaperSimJobCounts(*scale)
	if *simMax > 0 && *simMax < len(simCounts) {
		simCounts = simCounts[:*simMax]
	}
	base := mlfs.Options{Seed: *seed, SchedOpts: mlfs.SchedulerOptions{Seed: *seed}, Preset: mlfs.PaperReal}
	simBase := base
	simBase.Preset = mlfs.PaperSim

	emit := func(fig *mlfs.Figure, started time.Time) {
		path := filepath.Join(*out, fig.ID+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fig.WriteTSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s -> %s (%.1fs)\n", fig.ID, path, time.Since(started).Seconds())
		if *ascii {
			fmt.Println(fig.RenderASCII())
		}
	}

	want := *figure
	ran := 0
	match := func(id string) bool { return want == "all" || strings.HasPrefix(id, want) }

	if match("fig4") || match("makespan") {
		start := time.Now()
		figs, results, err := mlfs.Figure4All(schedulers, realCounts, base)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			emit(fig, start)
			ran++
		}
		// Makespan and the paper-shape report come from the same sweep.
		mk := &mlfs.Figure{ID: "makespan", Title: "Makespan", XLabel: "number of jobs", YLabel: "makespan (h)"}
		for _, name := range schedulers {
			s := mlfs.Series{Label: name}
			for i, jc := range realCounts {
				s.Points = append(s.Points, mlfs.Point{X: float64(jc), Y: results[name][i].MakespanSec / 3600})
			}
			mk.Series = append(mk.Series, s)
		}
		emit(mk, start)
		ran++
		if err := writeShapeReport(filepath.Join(*out, "shape.txt"), results); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s -> %s\n", "shape", filepath.Join(*out, "shape.txt"))
	}

	if match("fig5") {
		start := time.Now()
		figs, _, err := mlfs.Figure4All(schedulers, simCounts, simBase)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			emit(fig, start)
			ran++
		}
	}

	type gen struct {
		id  string
		run func() (*mlfs.Figure, error)
	}
	for _, g := range []gen{
		{"fig6", func() (*mlfs.Figure, error) { return mlfs.Figure6(realCounts, base) }},
		{"fig7", func() (*mlfs.Figure, error) { return mlfs.Figure7(realCounts, base) }},
		{"fig8", func() (*mlfs.Figure, error) { return mlfs.Figure8(realCounts, base) }},
		{"fig9", func() (*mlfs.Figure, error) { return mlfs.Figure9(realCounts, base) }},
	} {
		if !match(g.id) {
			continue
		}
		start := time.Now()
		fig, err := g.run()
		if err != nil {
			fatal(err)
		}
		emit(fig, start)
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no figure matches %q", want))
	}
}

// writeShapeReport checks the measured sweep against the paper's expected
// orderings and writes one line per expectation.
func writeShapeReport(path string, results map[string][]*mlfs.Result) error {
	// Only check expectations whose schedulers are in this sweep.
	var exps []mlfs.Expectation
	for _, e := range mlfs.PaperExpectations() {
		if _, ok := results[e.Better]; !ok {
			continue
		}
		if _, ok := results[e.Worse]; !ok {
			continue
		}
		exps = append(exps, e)
	}
	outcomes, err := mlfs.CheckExpectations(results, exps)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pass := 0
	for _, o := range outcomes {
		status := "FAIL"
		if o.Holds {
			status = "ok"
			pass++
		}
		fmt.Fprintf(f, "%-4s %-15s %-12s beats %-12s (%.4g vs %.4g)\n",
			status, o.Metric, o.Better, o.Worse, o.BetterValue, o.WorseValue)
	}
	fmt.Fprintf(f, "\n%d/%d expected orderings hold\n", pass, len(outcomes))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-bench:", err)
	os.Exit(1)
}
