// Command mlfs-bench regenerates every figure of the paper's evaluation
// (Figs. 4–9 plus the in-text makespan comparison), writes one TSV per
// figure into -out, and checks the measured results against the paper's
// expected orderings (shape.txt).
//
// With -simbench it instead profiles the simulator hot path itself
// (ns/tick, allocs/tick, jobs per wall-second; serial vs parallel job
// advancement) and writes the machine-readable BENCH_sim.json used to
// track scheduler-loop performance across revisions.
//
// With -nnbench it profiles the MLF-RL policy engine: the end-to-end
// mlf-rl Figure-4 sweep plus per-decision scoring and imitation-update
// micro paths, batched engine vs the historical per-candidate
// reference, written to BENCH_nn.json.
//
// With -faultbench it sweeps JCT degradation versus server MTTF under
// fault injection (identical failure traces for every scheduler) and
// writes BENCH_fault.json.
//
// Examples:
//
//	mlfs-bench -out results/                   # everything, Figure-4 scale
//	mlfs-bench -out results/ -figure fig4      # just the Figure-4 family
//	mlfs-bench -out results/ -scale 100        # Figure 5 at 1/100 job counts
//	mlfs-bench -out results/ -quick -ascii     # fast pass with ASCII charts
//	mlfs-bench -out results/ -simbench         # hot-path numbers -> BENCH_sim.json
//	mlfs-bench -out results/ -faultbench       # MTTF sweep -> BENCH_fault.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mlfs"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory for TSV files")
		figure   = flag.String("figure", "all", "fig4, fig5, fig6..fig9, makespan, or all")
		scale    = flag.Int("scale", 100, "divisor for Figure 5 job counts (1 = paper scale)")
		seed     = flag.Int64("seed", 1, "workload and policy seed")
		quick    = flag.Bool("quick", false, "use reduced job counts everywhere")
		schedCS  = flag.String("schedulers", "", "comma-separated scheduler subset (default: all)")
		ascii    = flag.Bool("ascii", false, "also print each figure as an ASCII chart")
		countsCS = flag.String("counts", "", "override Figure 4/6-9 job counts (comma-separated)")
		simMax   = flag.Int("sim-counts", 3, "how many Figure 5 job counts to run (1-5)")
		simbench = flag.Bool("simbench", false, "profile the simulator hot path and write BENCH_sim.json")
		benchJob = flag.Int("simbench-jobs", 155, "job count for -simbench runs")
		benchRep = flag.Int("simbench-reps", 3, "repetitions per -simbench configuration")
		baseWall = flag.Float64("simbench-baseline", 60.27,
			"recorded wall-seconds of the headline large-scale sweep before the hot-path optimisation (0 to omit the comparison)")
		nnbench = flag.Bool("nnbench", false, "profile the MLF-RL policy engine and write BENCH_nn.json")
		nnBase  = flag.Float64("nnbench-baseline", 9.2,
			"recorded wall-seconds of the mlf-rl Figure-4 sweep before NN batching (0 to omit the comparison)")
		scalebench  = flag.Bool("scalebench", false, "profile per-decision cost and peak memory at Philly scale and write BENCH_scale.json")
		scaleJobs   = flag.String("scalebench-jobs", "1000,10000,100000", "comma-separated job counts for -scalebench")
		scaleSrv    = flag.String("scalebench-servers", "55,550", "comma-separated server counts for -scalebench")
		scaleScheds = flag.String("scalebench-schedulers", "", "comma-separated scheduler subset for -scalebench (default fifo,srtf,mlf-h)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU pprof profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap pprof profile at exit to this file")

		faultbench = flag.Bool("faultbench", false, "sweep JCT degradation vs server MTTF and write BENCH_fault.json")
		faultJobs  = flag.Int("faultbench-jobs", 155, "job count for -faultbench runs")
		faultMTTFs = flag.String("faultbench-mttfs", "", "override the MTTF sweep: comma-separated seconds (0 = failure-free baseline)")
		snapEvery  = flag.Int("snapshot-every", 0, "-faultbench: snapshot each run every N ticks into <out>/snapshots (0 disables)")
		resumeRuns = flag.Bool("resume", false, "-faultbench: continue interrupted runs from <out>/snapshots")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *snapEvery < 0 {
		fatal(fmt.Errorf("-snapshot-every must be >= 0 (0 disables snapshotting), got %d", *snapEvery))
	}
	if (*snapEvery > 0 || *resumeRuns) && !*faultbench {
		fatal(fmt.Errorf("-snapshot-every and -resume only apply to -faultbench runs"))
	}
	if *simbench {
		if err := runSimBench(filepath.Join(*out, "BENCH_sim.json"), *seed, *benchJob, *benchRep, *baseWall); err != nil {
			fatal(err)
		}
		return
	}
	if *nnbench {
		if err := runNNBench(filepath.Join(*out, "BENCH_nn.json"), *nnBase); err != nil {
			fatal(err)
		}
		return
	}
	if *scalebench {
		jobCounts, err := parseInts(*scaleJobs)
		if err != nil {
			fatal(err)
		}
		serverCounts, err := parseInts(*scaleSrv)
		if err != nil {
			fatal(err)
		}
		schedulers := scaleBenchSchedulers
		if *scaleScheds != "" {
			schedulers = strings.Split(*scaleScheds, ",")
		}
		if err := runScaleBench(filepath.Join(*out, "BENCH_scale.json"), *seed, jobCounts, serverCounts, schedulers); err != nil {
			fatal(err)
		}
		return
	}
	if *faultbench {
		mttfs, err := parseMTTFs(*faultMTTFs)
		if err != nil {
			fatal(err)
		}
		cfg := faultBenchConfig{
			Path:          filepath.Join(*out, "BENCH_fault.json"),
			Seed:          *seed,
			Jobs:          *faultJobs,
			MTTFs:         mttfs,
			SnapshotEvery: *snapEvery,
			SnapshotDir:   filepath.Join(*out, "snapshots"),
			Resume:        *resumeRuns,
		}
		if err := runFaultBench(cfg); err != nil {
			fatal(err)
		}
		return
	}
	schedulers := mlfs.SchedulerNames()
	if *schedCS != "" {
		schedulers = strings.Split(*schedCS, ",")
	}
	realCounts := mlfs.PaperRealJobCounts()
	if *quick {
		realCounts = []int{40, 80, 155}
	}
	if *countsCS != "" {
		realCounts = nil
		for _, p := range strings.Split(*countsCS, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fatal(fmt.Errorf("bad count %q", p))
			}
			realCounts = append(realCounts, v)
		}
	}
	simCounts := mlfs.PaperSimJobCounts(*scale)
	if *simMax > 0 && *simMax < len(simCounts) {
		simCounts = simCounts[:*simMax]
	}
	base := mlfs.Options{Seed: *seed, SchedOpts: mlfs.SchedulerOptions{Seed: *seed}, Preset: mlfs.PaperReal}
	simBase := base
	simBase.Preset = mlfs.PaperSim

	emit := func(fig *mlfs.Figure, started time.Time) {
		path := filepath.Join(*out, fig.ID+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fig.WriteTSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s -> %s (%.1fs)\n", fig.ID, path, time.Since(started).Seconds())
		if *ascii {
			fmt.Println(fig.RenderASCII())
		}
	}

	want := *figure
	ran := 0
	match := func(id string) bool { return want == "all" || strings.HasPrefix(id, want) }

	if match("fig4") || match("makespan") {
		start := time.Now()
		figs, results, err := mlfs.Figure4All(schedulers, realCounts, base)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			emit(fig, start)
			ran++
		}
		// Makespan and the paper-shape report come from the same sweep.
		mk := &mlfs.Figure{ID: "makespan", Title: "Makespan", XLabel: "number of jobs", YLabel: "makespan (h)"}
		for _, name := range schedulers {
			s := mlfs.Series{Label: name}
			for i, jc := range realCounts {
				s.Points = append(s.Points, mlfs.Point{X: float64(jc), Y: results[name][i].MakespanSec / 3600})
			}
			mk.Series = append(mk.Series, s)
		}
		emit(mk, start)
		ran++
		if err := writeShapeReport(filepath.Join(*out, "shape.txt"), results); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s -> %s\n", "shape", filepath.Join(*out, "shape.txt"))
	}

	if match("fig5") {
		start := time.Now()
		figs, _, err := mlfs.Figure4All(schedulers, simCounts, simBase)
		if err != nil {
			fatal(err)
		}
		for _, fig := range figs {
			emit(fig, start)
			ran++
		}
	}

	type gen struct {
		id  string
		run func() (*mlfs.Figure, error)
	}
	for _, g := range []gen{
		{"fig6", func() (*mlfs.Figure, error) { return mlfs.Figure6(realCounts, base) }},
		{"fig7", func() (*mlfs.Figure, error) { return mlfs.Figure7(realCounts, base) }},
		{"fig8", func() (*mlfs.Figure, error) { return mlfs.Figure8(realCounts, base) }},
		{"fig9", func() (*mlfs.Figure, error) { return mlfs.Figure9(realCounts, base) }},
	} {
		if !match(g.id) {
			continue
		}
		start := time.Now()
		fig, err := g.run()
		if err != nil {
			fatal(err)
		}
		emit(fig, start)
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no figure matches %q", want))
	}
}

// writeShapeReport checks the measured sweep against the paper's expected
// orderings and writes one line per expectation.
func writeShapeReport(path string, results map[string][]*mlfs.Result) error {
	// Only check expectations whose schedulers are in this sweep.
	var exps []mlfs.Expectation
	for _, e := range mlfs.PaperExpectations() {
		if _, ok := results[e.Better]; !ok {
			continue
		}
		if _, ok := results[e.Worse]; !ok {
			continue
		}
		exps = append(exps, e)
	}
	outcomes, err := mlfs.CheckExpectations(results, exps)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pass := 0
	for _, o := range outcomes {
		status := "FAIL"
		if o.Holds {
			status = "ok"
			pass++
		}
		fmt.Fprintf(f, "%-4s %-15s %-12s beats %-12s (%.4g vs %.4g)\n",
			status, o.Metric, o.Better, o.Worse, o.BetterValue, o.WorseValue)
	}
	fmt.Fprintf(f, "\n%d/%d expected orderings hold\n", pass, len(outcomes))
	return nil
}

// simBenchEntry is one measured configuration of the hot-path benchmark.
type simBenchEntry struct {
	Scheduler      string  `json:"scheduler"`
	Jobs           int     `json:"jobs"`
	AdvanceWorkers int     `json:"advance_workers"`
	Reps           int     `json:"reps"`
	WallSeconds    float64 `json:"wall_seconds"` // best-of-reps for one full run
	Ticks          int     `json:"ticks"`
	NsPerTick      float64 `json:"ns_per_tick"`
	AllocsPerTick  float64 `json:"allocs_per_tick"`
	JobsPerWallSec float64 `json:"jobs_per_wall_second"`
	AvgJCTMin      float64 `json:"avg_jct_min"` // result fingerprint: must not move with workers
}

// simBenchHeadline is the BenchmarkFig5_LargeScale-equivalent workload
// (the avg-JCT sweep over the large-scale cluster at 1/1000 job counts),
// timed end to end and compared against the recorded pre-optimisation
// wall time on the same machine class.
type simBenchHeadline struct {
	Benchmark        string  `json:"benchmark"`
	WallSeconds      float64 `json:"wall_seconds"`
	BaselineWallSecs float64 `json:"baseline_wall_seconds,omitempty"`
	Speedup          float64 `json:"speedup_vs_baseline,omitempty"`
	MLFSAvgJCTMin    float64 `json:"mlfs_avg_jct_min"` // result fingerprint
}

// simBenchReport is the BENCH_sim.json schema.
type simBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Seed        int64             `json:"seed"`
	Headline    *simBenchHeadline `json:"headline,omitempty"`
	Entries     []simBenchEntry   `json:"entries"`
}

// runSimBench measures complete simulation runs (trace generation
// excluded) for representative schedulers, serial versus pooled job
// advancement, and writes the machine-readable report. Wall time is
// best-of-reps; allocations per tick are the total heap alloc count of a
// run divided by its scheduling rounds.
func runSimBench(path string, seed int64, jobs, reps int, baselineWall float64) error {
	if reps < 1 {
		reps = 1
	}
	report := simBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}

	// Headline: the same sweep BenchmarkFig5_LargeScale runs.
	hlSchedulers := []string{"mlfs", "mlf-rl", "mlf-h", "graphene", "tiresias", "gandiva", "tensorflow", "slaq"}
	hlBase := mlfs.Options{Seed: 1, SchedOpts: mlfs.SchedulerOptions{Seed: 1}, Preset: mlfs.PaperSim}
	hlStart := time.Now()
	fig, err := mlfs.Figure4(mlfs.FigAvgJCT, hlSchedulers, mlfs.PaperSimJobCounts(1000)[:3], hlBase)
	if err != nil {
		return err
	}
	hl := &simBenchHeadline{
		Benchmark:   "BenchmarkFig5_LargeScale",
		WallSeconds: time.Since(hlStart).Seconds(),
	}
	for _, s := range fig.Series {
		if s.Label == "mlfs" && len(s.Points) > 0 {
			hl.MLFSAvgJCTMin = s.Points[len(s.Points)-1].Y
		}
	}
	if baselineWall > 0 {
		hl.BaselineWallSecs = baselineWall
		hl.Speedup = baselineWall / hl.WallSeconds
	}
	report.Headline = hl
	fmt.Printf("simbench headline    %.2fs wall (baseline %.2fs, %.2fx)  mlfs avg JCT %.1f min\n",
		hl.WallSeconds, hl.BaselineWallSecs, hl.Speedup, hl.MLFSAvgJCTMin)
	base := mlfs.Options{Seed: seed, SchedOpts: mlfs.SchedulerOptions{Seed: seed}, Preset: mlfs.PaperReal}
	tr := mlfs.GenerateTrace(jobs, seed, mlfs.DefaultTraceDuration(jobs))
	for _, schedName := range []string{"mlfs", "mlf-h", "tiresias"} {
		for _, workers := range []int{1, 0} { // serial, then GOMAXPROCS pool
			opts := base
			opts.Scheduler = schedName
			opts.Trace = tr
			opts.AdvanceWorkers = workers
			var best *mlfs.Result
			bestWall := 0.0
			var allocsPerTick float64
			for r := 0; r < reps; r++ {
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				start := time.Now()
				res, err := mlfs.Run(opts)
				wall := time.Since(start).Seconds()
				runtime.ReadMemStats(&m1)
				if err != nil {
					return err
				}
				if best == nil || wall < bestWall {
					best, bestWall = res, wall
					if res.Counters.SchedRounds > 0 {
						allocsPerTick = float64(m1.Mallocs-m0.Mallocs) / float64(res.Counters.SchedRounds)
					}
				}
			}
			entry := simBenchEntry{
				Scheduler:      schedName,
				Jobs:           jobs,
				AdvanceWorkers: workers,
				Reps:           reps,
				WallSeconds:    bestWall,
				Ticks:          best.Counters.SchedRounds,
				AllocsPerTick:  allocsPerTick,
				JobsPerWallSec: float64(jobs) / bestWall,
				AvgJCTMin:      best.AvgJCTSec / 60,
			}
			if entry.Ticks > 0 {
				entry.NsPerTick = bestWall * 1e9 / float64(entry.Ticks)
			}
			report.Entries = append(report.Entries, entry)
			fmt.Printf("simbench %-9s workers=%d  %.2fs wall  %.0f ns/tick  %.1f allocs/tick  %.1f jobs/s\n",
				schedName, workers, bestWall, entry.NsPerTick, entry.AllocsPerTick, entry.JobsPerWallSec)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s -> %s\n", "simbench", path)
	return nil
}

// parseMTTFs validates the -faultbench-mttfs override; "" keeps the
// default sweep.
func parseMTTFs(s string) ([]float64, error) {
	if s == "" {
		return faultBenchMTTFs, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -faultbench-mttfs value %q", part)
		}
		if v < 0 {
			return nil, fmt.Errorf("-faultbench-mttfs values must be >= 0 (0 = failure-free baseline), got %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive ints (the
// -scalebench sweep overrides).
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q: want a positive integer", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-bench:", err)
	os.Exit(1)
}
