package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mlfs"
	"mlfs/internal/nn"
)

// nnBenchMicro is one measured micro-benchmark of the policy engine at
// the MLF-RL decision shape (16 candidate servers scored through the
// 18→32→16→1 policy net).
type nnBenchMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"` // per decision
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// nnBenchHeadline is the end-to-end number: the MLF-RL Figure-4 sweep
// timed wall-clock on the batched engine, against the recorded
// pre-batching wall time of the same sweep on the same machine class.
type nnBenchHeadline struct {
	Benchmark        string  `json:"benchmark"`
	WallSeconds      float64 `json:"wall_seconds"`
	BaselineWallSecs float64 `json:"baseline_wall_seconds,omitempty"`
	Speedup          float64 `json:"speedup_vs_baseline,omitempty"`
	MLFRLAvgJCTMin   float64 `json:"mlfrl_avg_jct_min"` // result fingerprint: batching must not move it
}

// nnBenchReport is the BENCH_nn.json schema.
type nnBenchReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Headline    *nnBenchHeadline `json:"headline,omitempty"`
	// ScoringSpeedup: per-decision candidate scoring (staging + softmax
	// inference), batched engine vs the historical per-candidate path.
	ScoringSpeedup float64 `json:"scoring_speedup"`
	// UpdateSpeedup: per-decision imitation update (scoring + gradient
	// step), minibatch-16 schedule vs the historical one-Adam-step-per-
	// decision path — the headline policy-scoring speedup of this change.
	UpdateSpeedup float64        `json:"update_speedup"`
	Micro         []nnBenchMicro `json:"micro"`
}

// nnFillFeatures writes deterministic pseudo-features; identical values
// go through every variant so only the engine differs.
func nnFillFeatures(dst []float64, decision, cand int) {
	for k := range dst {
		dst[k] = float64((decision*31+cand*7+k*13)%97) / 97
	}
}

func nnMicro(name string, f func(b *testing.B)) nnBenchMicro {
	r := testing.Benchmark(f)
	return nnBenchMicro{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runNNBench profiles the MLF-RL policy engine — the end-to-end sweep
// plus the per-decision micro paths — and writes BENCH_nn.json.
func runNNBench(path string, baselineWall float64) error {
	report := nnBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// Headline: the MLF-RL slice of the Figure-4 sweep, end to end.
	base := mlfs.Options{Seed: 1, SchedOpts: mlfs.SchedulerOptions{Seed: 1}, Preset: mlfs.PaperReal}
	counts := []int{155, 310}
	start := time.Now()
	fig, err := mlfs.Figure4(mlfs.FigAvgJCT, []string{"mlf-rl"}, counts, base)
	if err != nil {
		return err
	}
	hl := &nnBenchHeadline{
		Benchmark:   "mlf-rl Figure-4 sweep (155, 310 jobs)",
		WallSeconds: time.Since(start).Seconds(),
	}
	for _, s := range fig.Series {
		if s.Label == "mlf-rl" && len(s.Points) > 0 {
			hl.MLFRLAvgJCTMin = s.Points[len(s.Points)-1].Y
		}
	}
	if baselineWall > 0 {
		hl.BaselineWallSecs = baselineWall
		hl.Speedup = baselineWall / hl.WallSeconds
	}
	report.Headline = hl
	fmt.Printf("nnbench headline     %.2fs wall (baseline %.2fs, %.2fx)  mlf-rl avg JCT %.1f min\n",
		hl.WallSeconds, hl.BaselineWallSecs, hl.Speedup, hl.MLFRLAvgJCTMin)

	// Micro paths, all at the MLF-RL decision shape. "reference" is the
	// historical per-candidate implementation, preserved verbatim behind
	// Policy.SetReference.
	newPolicy := func(reference bool) *nn.Policy {
		p := nn.NewPolicy(18, []int{32, 16}, 3e-4, 1)
		p.SetReference(reference)
		return p
	}
	report.Micro = append(report.Micro,
		nnMicro("scoring/reference", func(b *testing.B) {
			p := newPolicy(true)
			defer p.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cands := make([][]float64, 16)
				for c := range cands {
					f := make([]float64, 18)
					nnFillFeatures(f, i, c)
					cands[c] = f
				}
				p.Probs(cands)
			}
		}),
		nnMicro("scoring/batched", func(b *testing.B) {
			p := newPolicy(false)
			defer p.Close()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x := p.Candidates(16)
				for c := 0; c < 16; c++ {
					nnFillFeatures(x.Row(c), i, c)
				}
				p.ProbsBatch(x)
			}
		}),
		nnMicro("imitation/reference", func(b *testing.B) {
			p := newPolicy(true)
			defer p.Close()
			cands := make([][]float64, 16)
			for c := range cands {
				cands[c] = make([]float64, 18)
				nnFillFeatures(cands[c], 0, c)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Imitate(cands, i%16)
			}
		}),
		nnMicro("imitation/batched", func(b *testing.B) {
			p := newPolicy(false)
			defer p.Close()
			x := p.Candidates(16)
			for c := 0; c < 16; c++ {
				nnFillFeatures(x.Row(c), 0, c)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ImitateBatch(x, i%16)
			}
		}),
		nnMicro("imitation/minibatch16", func(b *testing.B) {
			p := newPolicy(false)
			defer p.Close()
			x := p.Candidates(16)
			for c := 0; c < 16; c++ {
				nnFillFeatures(x.Row(c), 0, c)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.AccumImitate(x, i%16)
				if p.Accumulated() == 16 {
					p.Step()
				}
			}
		}),
	)
	byName := make(map[string]nnBenchMicro, len(report.Micro))
	for _, m := range report.Micro {
		byName[m.Name] = m
		fmt.Printf("nnbench %-22s %9.0f ns/decision  %4d allocs\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	if b := byName["scoring/batched"].NsPerOp; b > 0 {
		report.ScoringSpeedup = byName["scoring/reference"].NsPerOp / b
	}
	if b := byName["imitation/minibatch16"].NsPerOp; b > 0 {
		report.UpdateSpeedup = byName["imitation/reference"].NsPerOp / b
	}
	fmt.Printf("nnbench scoring speedup %.2fx, per-decision update speedup %.2fx\n",
		report.ScoringSpeedup, report.UpdateSpeedup)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-10s -> %s\n", "nnbench", path)
	return nil
}
