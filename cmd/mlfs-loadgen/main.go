// Command mlfs-loadgen drives a running mlfs-serve instance with a
// seeded synthetic workload and reports submission throughput,
// client-observed submit latency and server-reported decision latency.
//
// The default (replay) mode pauses the server, submits the whole
// generated trace with explicit arrival stamps, resumes, and waits for
// the run to drain — producing a run with a batch oracle. Open-loop
// mode (-rps) paces submissions against the wall clock instead.
//
// Examples:
//
//	mlfs-serve -scheduler mlfs -addr :8080 &
//	mlfs-loadgen -url http://localhost:8080 -jobs 1000 -seed 1
//	mlfs-loadgen -url http://localhost:8080 -jobs 500 -rps 200 -json results/BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"mlfs"
	"mlfs/internal/loadgen"
)

// benchFile is the JSON document written by -json, following the
// results/BENCH_*.json convention (generated_at + headline + entries).
type benchFile struct {
	GeneratedAt string            `json:"generated_at"`
	Headline    string            `json:"headline"`
	Entries     []*loadgen.Report `json:"entries"`
}

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "mlfs-serve base URL")
		jobs     = flag.Int("jobs", 1000, "jobs to submit")
		seed     = flag.Int64("seed", 1, "workload seed")
		duration = flag.Float64("duration", 0, "trace arrival window in simulated seconds (default: scaled to the server's cluster)")
		rps      = flag.Float64("rps", 0, "open-loop submissions per wall second (0 = replay mode: pause, submit all, resume, drain)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall run timeout")
		jsonOut  = flag.String("json", "", "write the report to this file (BENCH_serve.json format)")
	)
	flag.Parse()

	dur := *duration
	if dur <= 0 {
		// Match the batch harness's pressure calibration, scaled to the
		// served cluster's GPU count (read from /v1/cluster).
		gpus, err := clusterGPUs(*url)
		if err != nil {
			fatal(err)
		}
		dur = mlfs.DurationForCluster(*jobs, gpus)
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     *url,
		Jobs:        *jobs,
		Seed:        *seed,
		DurationSec: dur,
		Open:        *rps > 0,
		RPS:         *rps,
		Timeout:     *timeout,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("mode %s: %d jobs in %.2fs wall (%.0f submissions/min)\n",
		rep.Mode, rep.Submitted, rep.WallSeconds, rep.SubmissionsPerMin)
	fmt.Printf("submit latency p50 %.3fms p99 %.3fms\n", rep.SubmitP50Ms, rep.SubmitP99Ms)
	fmt.Printf("decision latency p50 %.3fms p99 %.3fms mean %.3fms over %d rounds\n",
		rep.DecisionP50Ms, rep.DecisionP99Ms, rep.DecisionMeanMs, rep.DecisionRounds)
	fmt.Printf("completed %d cancelled %d, %.1f simulated hours, avg JCT %.1f min\n",
		rep.Completed, rep.Cancelled, rep.SimTimeSec/3600, rep.Result.AvgJCTSec/60)

	if *jsonOut != "" {
		doc := benchFile{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Headline: fmt.Sprintf("%s: %.0f submissions/min, decision p99 %.3f ms, submit p99 %.3f ms over %d jobs",
				rep.Mode, rep.SubmissionsPerMin, rep.DecisionP99Ms, rep.SubmitP99Ms, rep.Jobs),
			Entries: []*loadgen.Report{rep},
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// clusterGPUs asks the server how many GPUs it simulates.
func clusterGPUs(base string) (int, error) {
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/cluster: %s", resp.Status)
	}
	var cv struct {
		GPUs int `json:"gpus"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		return 0, err
	}
	if cv.GPUs <= 0 {
		return 0, fmt.Errorf("server reports no GPUs")
	}
	return cv.GPUs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-loadgen:", err)
	os.Exit(1)
}
