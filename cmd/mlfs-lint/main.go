// Command mlfs-lint runs the repository's invariant analyzers (DESIGN.md
// §8) over the given package patterns and exits non-zero on findings.
//
// Usage:
//
//	mlfs-lint [-json] [-checks mapiter,noclock,...] [-stale-allows] [patterns...]
//
// Patterns follow the go tool ("./internal/...", "./cmd/mlfs-sim");
// without arguments it covers ., ./internal/..., ./cmd/... and
// ./examples/..., the surface `make lint` and CI gate on. All matched
// packages are loaded together and analysed as one program: the
// whole-module analyzers (snapstate, detflow) need cross-package call
// graphs, so a partial pattern list narrows what they can see.
//
// With -stale-allows, //mlfs:allow directives that no longer suppress
// anything are reported as findings (check "stale-allow"), keeping the
// suppression inventory honest. Only directives naming checks that
// actually ran are considered, so -checks subsets never produce false
// staleness.
//
// With -json it emits a machine-readable report on stdout for external
// CI:
//
//	{"module":"mlfs","findings":[{"check":"noclock","file":"internal/sim/sim.go",
//	 "line":340,"column":11,"message":"..."}],"suppressed":2}
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mlfs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlfs-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	staleAllows := fs.Bool("stale-allows", false, "also report //mlfs:allow directives that suppress nothing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mlfs-lint [-json] [-checks names] [-stale-allows] [patterns...]\n\nchecks:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.AnalyzersByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{".", "./internal/...", "./cmd/...", "./examples/..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	res := lint.Run(pkgs, analyzers)
	findings := res.Findings
	if *staleAllows {
		findings = append(findings, res.StaleAllows...)
	}

	if *jsonOut {
		report := struct {
			Module     string            `json:"module"`
			Findings   []lint.Diagnostic `json:"findings"`
			Suppressed int               `json:"suppressed"`
		}{Module: loader.ModulePath, Findings: findings, Suppressed: len(res.Suppressed)}
		if report.Findings == nil {
			report.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "mlfs-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
