// Command mlfs-lint runs the repository's invariant analyzers (DESIGN.md
// §8) over the given package patterns and exits non-zero on findings.
//
// Usage:
//
//	mlfs-lint [-json] [-checks mapiter,noclock,...] [patterns...]
//
// Patterns follow the go tool ("./internal/...", "./cmd/mlfs-sim");
// without arguments it covers ./internal/... and ./cmd/..., the surface
// `make lint` and CI gate on. With -json it emits a machine-readable
// report on stdout for external CI:
//
//	{"module":"mlfs","findings":[{"check":"noclock","file":"internal/sim/sim.go",
//	 "line":340,"column":11,"message":"..."}],"suppressed":2}
//
// Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mlfs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlfs-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mlfs-lint [-json] [-checks names] [patterns...]\n\nchecks:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.AnalyzersByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./cmd/..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var findings []lint.Diagnostic
	suppressed := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		f, s := lint.RunPackage(pkg, analyzers)
		findings = append(findings, f...)
		suppressed += len(s)
	}

	if *jsonOut {
		report := struct {
			Module     string            `json:"module"`
			Findings   []lint.Diagnostic `json:"findings"`
			Suppressed int               `json:"suppressed"`
		}{Module: loader.ModulePath, Findings: findings, Suppressed: suppressed}
		if report.Findings == nil {
			report.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "mlfs-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
