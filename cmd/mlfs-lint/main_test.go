package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The fixture path is relative to this package directory; go test runs
// with the package dir as the working directory, and FindModuleRoot
// climbs from "." so the loader still resolves the module.
const dirtyFixture = "../../internal/lint/testdata/floatcmp"

func TestRunCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-stale-allows", "../..", "../../internal/...", "../../cmd/...", "../../examples/..."}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run must print nothing, got %q", stdout.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatcmp") {
		t.Errorf("findings output missing check name:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing summary line: %q", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var report struct {
		Module   string `json:"module"`
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if report.Module != "mlfs" {
		t.Errorf("module = %q, want mlfs", report.Module)
	}
	if len(report.Findings) == 0 {
		t.Fatal("expected findings from the dirty fixture")
	}
	for _, f := range report.Findings {
		if f.Check != "floatcmp" || f.Line == 0 || f.File == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if report.Suppressed == 0 {
		t.Error("fixture has an //mlfs:allow site; suppressed must be > 0")
	}
}

func TestRunJSONCleanEmitsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-checks", "noclock", dirtyFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0 (noclock has nothing to say about the floatcmp fixture)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"findings": []`) {
		t.Errorf("clean JSON must contain an empty findings array, not null:\n%s", stdout.String())
	}
}

// TestRunStaleAllows drives the suppression-inventory check: the fixture's
// dead //mlfs:allow directive is invisible by default and a finding with
// -stale-allows.
func TestRunStaleAllows(t *testing.T) {
	const fixture = "../../internal/lint/testdata/staleallow"
	var stdout, stderr bytes.Buffer
	if code := run([]string{fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("default run = %d, want 0 (stale directives are not findings without the flag)\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-stale-allows", fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("-stale-allows run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "stale-allow") || !strings.Contains(out, "suppresses no floatcmp finding") {
		t.Errorf("stale-allow diagnostic missing or unspecific:\n%s", out)
	}
}

// TestRunJSONModuleAnalyzers pins the machine-readable shape of the
// whole-module analyzers' diagnostics (external CI consumes this): the
// detflow and snapstate fixtures must produce findings under their check
// names, and a stale directive must surface as check "stale-allow".
func TestRunJSONModuleAnalyzers(t *testing.T) {
	type report struct {
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	cases := []struct {
		name  string
		args  []string
		check string
	}{
		{"detflow", []string{"-json", "-checks", "detflow", "../../internal/lint/testdata/detflow"}, "detflow"},
		{"snapstate", []string{"-json", "-checks", "snapstate", "../../internal/lint/testdata/snapstate"}, "snapstate"},
		{"stale-allow", []string{"-json", "-stale-allows", "../../internal/lint/testdata/staleallow"}, "stale-allow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 1 {
				t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
			}
			var rep report
			if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
				t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
			}
			if len(rep.Findings) == 0 {
				t.Fatalf("expected %s findings", tc.check)
			}
			for _, f := range rep.Findings {
				if f.Check != tc.check || f.File == "" || f.Line == 0 || f.Message == "" {
					t.Errorf("incomplete or mis-attributed finding: %+v", f)
				}
			}
		})
	}
}

func TestRunBadCheckName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Errorf("stderr should name the unknown check: %q", stderr.String())
	}
}
