package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The fixture path is relative to this package directory; go test runs
// with the package dir as the working directory, and FindModuleRoot
// climbs from "." so the loader still resolves the module.
const dirtyFixture = "../../internal/lint/testdata/floatcmp"

func TestRunCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../../internal/...", "../../cmd/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run must print nothing, got %q", stdout.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatcmp") {
		t.Errorf("findings output missing check name:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing summary line: %q", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var report struct {
		Module   string `json:"module"`
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if report.Module != "mlfs" {
		t.Errorf("module = %q, want mlfs", report.Module)
	}
	if len(report.Findings) == 0 {
		t.Fatal("expected findings from the dirty fixture")
	}
	for _, f := range report.Findings {
		if f.Check != "floatcmp" || f.Line == 0 || f.File == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if report.Suppressed == 0 {
		t.Error("fixture has an //mlfs:allow site; suppressed must be > 0")
	}
}

func TestRunJSONCleanEmitsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-checks", "noclock", dirtyFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0 (noclock has nothing to say about the floatcmp fixture)\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"findings": []`) {
		t.Errorf("clean JSON must contain an empty findings array, not null:\n%s", stdout.String())
	}
}

func TestRunBadCheckName(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Errorf("stderr should name the unknown check: %q", stderr.String())
	}
}
