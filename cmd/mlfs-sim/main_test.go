package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlfs"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("155, 310,620")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 155 || got[1] != 310 || got[2] != 620 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("12,abc"); err == nil {
		t.Fatal("bad input must error")
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestValidateFaultFlags(t *testing.T) {
	if err := validateFaultFlags(0, 600); err != nil {
		t.Fatalf("defaults must pass: %v", err)
	}
	if err := validateFaultFlags(21600, 600); err != nil {
		t.Fatalf("valid faults must pass: %v", err)
	}
	if err := validateFaultFlags(-1, 600); err == nil {
		t.Fatal("negative -mttf must error")
	}
	if err := validateFaultFlags(21600, 0); err == nil {
		t.Fatal("-mttf without positive -mttr must error")
	}
}

func TestValidateSnapshotFlags(t *testing.T) {
	for _, ok := range []struct {
		every        int
		path, resume string
	}{
		{0, "", ""},                 // snapshotting off
		{500, "run.snap", ""},       // periodic snapshots
		{0, "", "run.snap"},         // resume only
		{500, "a.snap", "b.snap"},   // resume and keep snapshotting
		{0, "run.snap", "run.snap"}, // resume names the file via -snapshot too
	} {
		if err := validateSnapshotFlags(ok.every, ok.path, ok.resume); err != nil {
			t.Fatalf("%+v must pass: %v", ok, err)
		}
	}
	if err := validateSnapshotFlags(-1, "run.snap", ""); err == nil {
		t.Fatal("negative -snapshot-every must error")
	}
	if err := validateSnapshotFlags(5, "", ""); err == nil {
		t.Fatal("-snapshot-every without -snapshot must error")
	}
	if err := validateSnapshotFlags(0, "run.snap", ""); err == nil {
		t.Fatal("-snapshot without -snapshot-every must error")
	}
}

// TestRunOrResumeDegradesOnCorruptSnapshot exercises the CLI's
// restart-from-zero path: a corrupt snapshot under -resume must warn
// and fall back to a fresh run whose result matches a plain Run.
func TestRunOrResumeDegradesOnCorruptSnapshot(t *testing.T) {
	opts := mlfs.Options{
		Scheduler: "mlf-h",
		Jobs:      12, Seed: 1, TraceDurationSec: 900,
		Servers: 2, GPUsPerServer: 4,
	}
	golden, err := mlfs.Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("MLFSSNAP garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := runOrResume(opts, bad)
	if err != nil {
		t.Fatalf("corrupt snapshot must degrade to a fresh run, got %v", err)
	}
	res.Counters.SchedSeconds, golden.Counters.SchedSeconds = 0, 0
	if !reflect.DeepEqual(res, golden) {
		t.Fatal("degraded run differs from a fresh run")
	}
}
