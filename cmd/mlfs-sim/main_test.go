package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("155, 310,620")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 155 || got[1] != 310 || got[2] != 620 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("12,abc"); err == nil {
		t.Fatal("bad input must error")
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty input must error")
	}
}
