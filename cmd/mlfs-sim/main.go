// Command mlfs-sim runs trace-driven scheduling simulations: a single
// run (-scheduler) or a head-to-head comparison of several schedulers
// (-compare), on either of the paper's cluster scales.
//
// Examples:
//
//	mlfs-sim -scheduler mlfs -jobs 620
//	mlfs-sim -compare mlfs,mlf-h,tiresias -jobs 620
//	mlfs-sim -compare all -jobs 155,310,620 -preset paper-real
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"mlfs"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "", "single scheduler to run (see -list)")
		compare   = flag.String("compare", "", "comma-separated schedulers, or 'all'")
		jobsFlag  = flag.String("jobs", "620", "comma-separated job counts")
		seed      = flag.Int64("seed", 1, "workload + policy seed")
		preset    = flag.String("preset", "paper-real", "cluster preset: paper-real | paper-sim")
		servers   = flag.Int("servers", 0, "override: number of servers")
		gpus      = flag.Int("gpus", 0, "override: GPUs per server")
		traceCSV  = flag.String("trace", "", "load workload from a trace CSV instead of generating")
		list      = flag.Bool("list", false, "list scheduler names and exit")
		sweepP    = flag.String("sweep", "", "sweep one MLF-H parameter (alpha|gamma|gamma_d|gamma_r|gamma_w|ps|hr|hs)")
		sweepV    = flag.String("values", "", "comma-separated sweep values")
	)
	flag.Parse()

	if *list {
		for _, n := range mlfs.SchedulerNames() {
			fmt.Println(n)
		}
		return
	}

	jobCounts, err := parseInts(*jobsFlag)
	if err != nil {
		fatal(err)
	}
	base := mlfs.Options{
		Seed:      *seed,
		SchedOpts: mlfs.SchedulerOptions{Seed: *seed},
		Preset:    mlfs.ClusterPreset(*preset),
		Servers:   *servers, GPUsPerServer: *gpus,
	}
	if *traceCSV != "" {
		tr, err := mlfs.LoadTraceCSV(*traceCSV)
		if err != nil {
			fatal(err)
		}
		base.Trace = tr
	}

	if *sweepP != "" {
		runSweep(base, *sweepP, *sweepV, jobCounts[0])
		return
	}

	var names []string
	switch {
	case *compare == "all":
		names = mlfs.SchedulerNames()
	case *compare != "":
		names = strings.Split(*compare, ",")
	case *scheduler != "":
		names = []string{*scheduler}
	default:
		fatal(fmt.Errorf("need -scheduler or -compare (try -list)"))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheduler\tjobs\tavgJCT(min)\tmakespan(h)\twait(min)\tddl-ratio\tacc\tacc-ratio\tbw(GB)\tsched(ms)\tmigr\ttrunc")
	for _, jc := range jobCounts {
		for _, name := range names {
			opts := base
			opts.Scheduler = name
			opts.Jobs = jc
			// Run generates the workload deterministically from (jobs,
			// seed, cluster), so every scheduler at the same job count
			// sees an identical trace.
			res, err := mlfs.Run(opts)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f\t%.1f\t%.3f\t%d\t%d\n",
				res.Scheduler, res.Jobs, res.AvgJCTSec/60, res.MakespanSec/3600,
				res.AvgWaitSec/60, res.DeadlineRatio, res.AvgAccuracy, res.AccuracyRatio,
				res.Counters.BandwidthMB/1024, res.SchedOverheadMS(),
				res.Counters.Migrations, res.Counters.Truncated)
		}
	}
	w.Flush()
}

// runSweep executes the parameter sensitivity sweep and prints one row
// per value.
func runSweep(base mlfs.Options, param, valuesCSV string, jobs int) {
	var values []float64
	for _, part := range strings.Split(valuesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad sweep value %q", part))
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		fatal(fmt.Errorf("-sweep needs -values"))
	}
	base.Jobs = jobs
	points, err := mlfs.Sweep(param, values, base)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tavgJCT(min)\tddl-ratio\tacc\tacc-ratio\tbw(GB)\n", param)
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(w, "%g\t%.1f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			p.Value, r.AvgJCTSec/60, r.DeadlineRatio, r.AvgAccuracy, r.AccuracyRatio,
			r.Counters.BandwidthMB/1024)
	}
	w.Flush()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad job count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-sim:", err)
	os.Exit(1)
}
