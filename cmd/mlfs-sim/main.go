// Command mlfs-sim runs trace-driven scheduling simulations: a single
// run (-scheduler) or a head-to-head comparison of several schedulers
// (-compare), on either of the paper's cluster scales. Long runs can
// write periodic crash-consistent snapshots (-snapshot-every) and be
// continued bit-identically after an interruption (-resume).
//
// Examples:
//
//	mlfs-sim -scheduler mlfs -jobs 620
//	mlfs-sim -compare mlfs,mlf-h,tiresias -jobs 620
//	mlfs-sim -compare all -jobs 155,310,620 -preset paper-real
//	mlfs-sim -scheduler mlfs -jobs 620 -mttf 21600 -snapshot-every 500 -snapshot run.snap
//	mlfs-sim -scheduler mlfs -jobs 620 -mttf 21600 -resume run.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"mlfs"
)

func main() {
	var (
		scheduler = flag.String("scheduler", "", "single scheduler to run (see -list)")
		compare   = flag.String("compare", "", "comma-separated schedulers, or 'all'")
		jobsFlag  = flag.String("jobs", "620", "comma-separated job counts")
		seed      = flag.Int64("seed", 1, "workload + policy seed")
		preset    = flag.String("preset", "paper-real", "cluster preset: paper-real | paper-sim")
		servers   = flag.Int("servers", 0, "override: number of servers")
		gpus      = flag.Int("gpus", 0, "override: GPUs per server")
		traceCSV  = flag.String("trace", "", "load workload from a trace CSV instead of generating")
		list      = flag.Bool("list", false, "list scheduler names and exit")
		sweepP    = flag.String("sweep", "", "sweep one MLF-H parameter (alpha|gamma|gamma_d|gamma_r|gamma_w|ps|hr|hs)")
		sweepV    = flag.String("values", "", "comma-separated sweep values")
		workers   = flag.Int("workers", 0, "job-advancement goroutines (0 = GOMAXPROCS; results identical for any value)")

		mttf     = flag.Float64("mttf", 0, "mean time to server failure in seconds (0 disables fault injection)")
		mttr     = flag.Float64("mttr", 600, "mean time to server repair in seconds")
		failSeed = flag.Int64("failure-seed", 0, "failure-trace seed (default: -seed)")

		snapEvery = flag.Int("snapshot-every", 0, "write a snapshot every N ticks (0 disables; requires -snapshot)")
		snapPath  = flag.String("snapshot", "", "snapshot file path")
		resume    = flag.String("resume", "", "continue a run from this snapshot file")
	)
	flag.Parse()

	if *list {
		for _, n := range mlfs.SchedulerNames() {
			fmt.Println(n)
		}
		return
	}

	jobCounts, err := parseInts(*jobsFlag)
	if err != nil {
		fatal(err)
	}
	base := mlfs.Options{
		Seed:      *seed,
		SchedOpts: mlfs.SchedulerOptions{Seed: *seed},
		Preset:    mlfs.ClusterPreset(*preset),
		Servers:   *servers, GPUsPerServer: *gpus,
		AdvanceWorkers: *workers,
	}
	if *traceCSV != "" {
		tr, err := mlfs.LoadTraceCSV(*traceCSV)
		if err != nil {
			fatal(err)
		}
		base.Trace = tr
	}

	if err := validateFaultFlags(*mttf, *mttr); err != nil {
		fatal(err)
	}
	if *mttf > 0 {
		fs := *failSeed
		if fs == 0 {
			fs = *seed
		}
		base.Failures = mlfs.FailureConfig{MTTFSec: *mttf, MTTRSec: *mttr, Seed: fs}
	}

	if err := validateSnapshotFlags(*snapEvery, *snapPath, *resume); err != nil {
		fatal(err)
	}
	base.SnapshotEvery = *snapEvery
	base.SnapshotPath = *snapPath

	if *sweepP != "" {
		if *resume != "" {
			fatal(fmt.Errorf("-resume applies to a single -scheduler run, not -sweep"))
		}
		runSweep(base, *sweepP, *sweepV, jobCounts[0])
		return
	}

	var names []string
	switch {
	case *compare == "all":
		names = mlfs.SchedulerNames()
	case *compare != "":
		names = strings.Split(*compare, ",")
	case *scheduler != "":
		names = []string{*scheduler}
	default:
		fatal(fmt.Errorf("need -scheduler or -compare (try -list)"))
	}

	if *resume != "" {
		if *compare != "" {
			fatal(fmt.Errorf("-resume applies to a single -scheduler run, not -compare"))
		}
		if len(jobCounts) != 1 {
			fatal(fmt.Errorf("-resume applies to a single job count, got %d", len(jobCounts)))
		}
		if _, err := os.Stat(*resume); err != nil {
			fatal(fmt.Errorf("-resume: %w", err))
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheduler\tjobs\tavgJCT(min)\tmakespan(h)\twait(min)\tddl-ratio\tacc\tacc-ratio\tbw(GB)\tsched(ms)\tmigr\ttrunc")
	for _, jc := range jobCounts {
		for _, name := range names {
			opts := base
			opts.Scheduler = name
			opts.Jobs = jc
			// Run generates the workload deterministically from (jobs,
			// seed, cluster), so every scheduler at the same job count
			// sees an identical trace.
			res, err := runOrResume(opts, *resume)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f\t%.1f\t%.3f\t%d\t%d\n",
				res.Scheduler, res.Jobs, res.AvgJCTSec/60, res.MakespanSec/3600,
				res.AvgWaitSec/60, res.DeadlineRatio, res.AvgAccuracy, res.AccuracyRatio,
				res.Counters.BandwidthMB/1024, res.SchedOverheadMS(),
				res.Counters.Migrations, res.Counters.Truncated)
		}
	}
	w.Flush()
}

// validateFaultFlags rejects fault-injection flag combinations with a
// clear message instead of letting them surface as config errors later.
func validateFaultFlags(mttf, mttr float64) error {
	if mttf < 0 {
		return fmt.Errorf("-mttf must be >= 0 (0 disables fault injection), got %v", mttf)
	}
	if mttf > 0 && mttr <= 0 {
		return fmt.Errorf("-mttr must be > 0 when -mttf is set, got %v", mttr)
	}
	return nil
}

// validateSnapshotFlags rejects snapshot flag combinations that would
// silently do nothing or have nowhere to write.
func validateSnapshotFlags(every int, path, resume string) error {
	switch {
	case every < 0:
		return fmt.Errorf("-snapshot-every must be >= 0 (0 disables snapshotting), got %d", every)
	case every > 0 && path == "":
		return fmt.Errorf("-snapshot-every %d needs -snapshot <path> to write to", every)
	case every == 0 && path != "" && resume == "":
		return fmt.Errorf("-snapshot %q has no effect without -snapshot-every N", path)
	}
	return nil
}

// runOrResume continues from a snapshot when one is given, degrading to
// a fresh run — with a warning, never a crash — when the snapshot file
// is corrupt or from an incompatible format version. A snapshot of a
// different run configuration stays fatal: silently computing something
// other than what was asked for would be worse than stopping.
func runOrResume(opts mlfs.Options, resumePath string) (*mlfs.Result, error) {
	if resumePath == "" {
		return mlfs.Run(opts)
	}
	res, err := mlfs.Resume(resumePath, opts)
	if errors.Is(err, mlfs.ErrSnapshotCorrupt) || errors.Is(err, mlfs.ErrSnapshotVersion) {
		fmt.Fprintf(os.Stderr, "mlfs-sim: warning: snapshot %s unusable (%v); restarting from zero\n", resumePath, err)
		return mlfs.Run(opts)
	}
	return res, err
}

// runSweep executes the parameter sensitivity sweep and prints one row
// per value.
func runSweep(base mlfs.Options, param, valuesCSV string, jobs int) {
	var values []float64
	for _, part := range strings.Split(valuesCSV, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad sweep value %q", part))
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		fatal(fmt.Errorf("-sweep needs -values"))
	}
	base.Jobs = jobs
	points, err := mlfs.Sweep(param, values, base)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tavgJCT(min)\tddl-ratio\tacc\tacc-ratio\tbw(GB)\n", param)
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(w, "%g\t%.1f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			p.Value, r.AvgJCTSec/60, r.DeadlineRatio, r.AvgAccuracy, r.AccuracyRatio,
			r.Counters.BandwidthMB/1024)
	}
	w.Flush()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad job count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-sim:", err)
	os.Exit(1)
}
