// Command mlfs-serve runs the scheduling simulator as a long-lived
// HTTP/JSON service: jobs are submitted, inspected and cancelled over
// the API while a single event loop advances the cluster in scaled
// time (-timescale) or as fast as it can. Accepted submissions and
// cancellations are journaled and the full service state is
// snapshotted on a tick cadence, so a restarted server resumes the
// run bit-identically. Admission bounds (-max-queued, -max-lookahead)
// shed overload with 429 + Retry-After, and a second instance started
// with -follow tails the primary's journal stream as a read-only hot
// standby, promotable on primary loss.
//
// Examples:
//
//	mlfs-serve -scheduler mlfs -addr :8080
//	mlfs-serve -scheduler mlfs -timescale 60 -journal run.jsonl \
//	    -snapshot-every 500 -snapshot run.snap
//	mlfs-serve -addr :8081 -journal standby.jsonl \
//	    -follow http://localhost:8080 -promote-on-loss 10s
//	curl -s localhost:8080/v1/jobs -d '{"gpus": 4}'
//
// See OPERATIONS.md for the full API and metrics reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlfs"
	"mlfs/internal/cluster"
	"mlfs/internal/serve"
	"mlfs/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		scheduler = flag.String("scheduler", "mlfs", "scheduling policy (see mlfs-sim -list)")
		preset    = flag.String("preset", "paper-real", "cluster preset: paper-real | paper-sim")
		servers   = flag.Int("servers", 0, "override: number of servers")
		gpus      = flag.Int("gpus", 0, "override: GPUs per server")
		seed      = flag.Int64("seed", 1, "policy seed")
		timescale = flag.Float64("timescale", 0, "simulated seconds per wall second (0 = as fast as possible)")
		tick      = flag.Float64("tick", 0, "scheduling period in simulated seconds (default 60)")
		workers   = flag.Int("workers", 0, "job-advancement goroutines (0 = GOMAXPROCS; results identical for any value)")
		wobble    = flag.Float64("wobble", 0, "task demand variation amplitude (0 = default 0.35, negative disables)")
		paused    = flag.Bool("paused", false, "start with the clock paused (resume via POST /v1/resume)")

		mttf     = flag.Float64("mttf", 0, "mean time to server failure in seconds (0 disables fault injection)")
		mttr     = flag.Float64("mttr", 600, "mean time to server repair in seconds")
		failSeed = flag.Int64("failure-seed", 0, "failure-trace seed (default: -seed)")

		snapEvery = flag.Int("snapshot-every", 0, "write a service snapshot every N ticks (0 disables; requires -snapshot and -journal)")
		snapPath  = flag.String("snapshot", "", "snapshot file path (reloaded on start when present)")
		jourPath  = flag.String("journal", "", "journal path for accepted submissions and cancellations (replayed on start when present)")
		fsync     = flag.Bool("journal-fsync", true, "fsync the journal after every append (acknowledged records survive power loss)")

		maxQueued    = flag.Int("max-queued", 0, "admission bound: submissions awaiting simulator admission before shedding with 429 (0 = unlimited)")
		maxLookahead = flag.Float64("max-lookahead", 0, "admission bound: sim-seconds a submission's arrival may lie ahead of the clock (0 = unlimited)")

		readHeaderTO = flag.Duration("read-header-timeout", 0, "HTTP read-header timeout (0 = 10s default, negative disables)")
		readTO       = flag.Duration("read-timeout", 0, "HTTP read timeout (0 = 30s default, negative disables)")
		writeTO      = flag.Duration("write-timeout", 0, "HTTP write timeout (0 = 60s default, negative disables)")
		idleTO       = flag.Duration("idle-timeout", 0, "HTTP idle-connection timeout (0 = 120s default, negative disables)")

		follow        = flag.String("follow", "", "run as a hot-standby follower of this primary base URL (e.g. http://primary:8080)")
		promoteOnLoss = flag.Duration("promote-on-loss", 0, "self-promote after the primary has been unreachable this long (0 = explicit POST /v1/promote only)")
	)
	flag.Parse()

	cfg := serve.Config{
		NewScheduler: func() (serve.Scheduler, error) {
			return mlfs.NewScheduler(*scheduler, mlfs.SchedulerOptions{Seed: *seed})
		},
		SchedulerName:  *scheduler,
		Cluster:        clusterConfig(*preset, *servers, *gpus),
		TickSec:        *tick,
		DemandWobble:   *wobble,
		AdvanceWorkers: *workers,
		Timescale:      *timescale,
		SnapshotEvery:  *snapEvery,
		SnapshotPath:   *snapPath,
		JournalPath:    *jourPath,
		NoJournalFsync: !*fsync,
		StartPaused:    *paused,

		MaxQueuedJobs:   *maxQueued,
		MaxLookaheadSec: *maxLookahead,

		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,

		FollowURL:     *follow,
		PromoteOnLoss: *promoteOnLoss,
	}
	if *mttf > 0 {
		fs := *failSeed
		if fs == 0 {
			fs = *seed
		}
		cfg.Failures = sim.FailureConfig{MTTFSec: *mttf, MTTRSec: *mttr, Seed: fs}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if info := srv.Info(); info.Resumed {
		fmt.Fprintf(os.Stderr, "mlfs-serve: resumed from %s: %d journaled submissions, %d already finalised\n",
			*snapPath, info.JournalRecords, info.CompletedRestored)
	} else if info.JournalRecords > 0 {
		fmt.Fprintf(os.Stderr, "mlfs-serve: replaying %d journaled submissions from %s\n",
			info.JournalRecords, *jourPath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv.Start()

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting requests,
	// write the final snapshot, then exit. A second signal kills.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	if *follow != "" {
		fmt.Fprintf(os.Stderr, "mlfs-serve: following %s (read-only; POST /v1/promote to take over)\n", *follow)
	}
	fmt.Fprintf(os.Stderr, "mlfs-serve: %s scheduler on %s (timescale %g)\n",
		*scheduler, ln.Addr(), *timescale)

	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mlfs-serve: %v: draining and snapshotting (send again to kill)\n", sig)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "mlfs-serve: killed")
			srv.Kill()
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Stop(ctx); err != nil {
			fatal(err)
		}
	}
}

func clusterConfig(preset string, servers, gpus int) cluster.Config {
	if servers > 0 && gpus > 0 {
		return cluster.Config{
			Servers: servers, GPUsPerServer: gpus,
			GPUCapacity: 1, CPUCapacity: 32, MemoryCapacity: 244, BWCapacity: 1200,
		}
	}
	if preset == "paper-sim" {
		return cluster.PaperSimConfig()
	}
	return cluster.PaperRealConfig()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-serve:", err)
	os.Exit(1)
}
