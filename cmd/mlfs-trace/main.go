// Command mlfs-trace generates and inspects synthetic Philly-calibrated
// workload traces.
//
// Examples:
//
//	mlfs-trace -gen -jobs 620 -seed 1 -out trace.csv
//	mlfs-trace -stat trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mlfs"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		jobs    = flag.Int("jobs", 620, "number of jobs to generate")
		seed    = flag.Int64("seed", 1, "generation seed")
		durH    = flag.Float64("duration-hours", 0, "arrival window (0: scaled to job count)")
		out     = flag.String("out", "", "output CSV path (default stdout)")
		statArg = flag.String("stat", "", "print summary statistics of a trace CSV")
		phillyP = flag.String("philly", "", "convert a real Philly cluster_job_log to a trace CSV (-out)")
		maxJobs = flag.Int("max-jobs", 0, "with -philly: truncate to this many jobs (0 = all)")
	)
	flag.Parse()

	switch {
	case *phillyP != "":
		tr, err := mlfs.LoadPhillyTrace(*phillyP, *maxJobs, *seed)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			if err := tr.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if err := mlfs.SaveTraceCSV(tr, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("converted %d Philly jobs to %s\n", len(tr.Records), *out)
	case *gen:
		dur := *durH * 3600
		if dur <= 0 {
			dur = float64(*jobs) * 120
			if dur < 2*3600 {
				dur = 2 * 3600
			}
		}
		tr := mlfs.GenerateTrace(*jobs, *seed, dur)
		if *out == "" {
			if err := tr.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if err := mlfs.SaveTraceCSV(tr, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d jobs over %.1f h to %s\n", len(tr.Records), dur/3600, *out)
	case *statArg != "":
		tr, err := mlfs.LoadTraceCSV(*statArg)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr *mlfs.Trace) {
	gpuHist := map[int]int{}
	famHist := map[string]int{}
	commHist := map[string]int{}
	urgent := 0
	var lastArrival float64
	for _, r := range tr.Records {
		gpuHist[r.GPUs]++
		famHist[r.Family.String()]++
		commHist[r.Comm.String()]++
		if r.Urgency > 8 {
			urgent++
		}
		if r.ArrivalSec > lastArrival {
			lastArrival = r.ArrivalSec
		}
	}
	fmt.Printf("jobs: %d over %.1f h (%.1f jobs/h)\n",
		len(tr.Records), lastArrival/3600, float64(len(tr.Records))/(lastArrival/3600))
	fmt.Printf("urgent (>8): %d (%.1f%%)\n", urgent, 100*float64(urgent)/float64(len(tr.Records)))
	var gpus []int
	for g := range gpuHist {
		gpus = append(gpus, g)
	}
	sort.Ints(gpus)
	fmt.Println("gpu demand:")
	for _, g := range gpus {
		fmt.Printf("  %2d GPUs: %d\n", g, gpuHist[g])
	}
	fmt.Println("families:")
	var fams []string
	for f := range famHist {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		fmt.Printf("  %-8s %d\n", f, famHist[f])
	}
	fmt.Printf("comm: ps=%d allreduce=%d\n", commHist["ps"], commHist["allreduce"])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlfs-trace:", err)
	os.Exit(1)
}
